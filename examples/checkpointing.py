"""Checkpointing: survive a restart without losing the decayed state.

Serializes a WBMH mid-stream to JSON, "restarts", restores, and shows the
restored engine continuing bit-for-bit -- then contrasts the snapshot size
with what retaining the raw stream would cost.

Run:  python examples/checkpointing.py
"""

import json
import random

from repro import PolynomialDecay, engine_from_dict, engine_to_dict, make_decaying_sum
from repro.core.exact import ExactDecayingSum


def main() -> None:
    decay = PolynomialDecay(alpha=1.0)
    engine = make_decaying_sum(decay, epsilon=0.05)
    reference = ExactDecayingSum(decay)

    rng = random.Random(31)
    half = 10_000
    for _ in range(half):
        if rng.random() < 0.4:
            v = rng.uniform(0.5, 2.0)
            engine.add(v)
            reference.add(v)
        engine.advance(1)
        reference.advance(1)

    snapshot = json.dumps(engine_to_dict(engine))
    print(f"snapshot after {half} ticks: {len(snapshot)} JSON bytes "
          f"({engine.storage_report().per_stream_bits} model bits)")
    raw_bytes = reference.items_observed * 12  # ~(timestamp, value) pairs
    print(f"raw stream retained so far would be ~{raw_bytes} bytes\n")

    # --- simulated restart ---------------------------------------------
    del engine
    restored = engine_from_dict(json.loads(snapshot))

    for _ in range(half):
        if rng.random() < 0.4:
            v = rng.uniform(0.5, 2.0)
            restored.add(v)
            reference.add(v)
        restored.advance(1)
        reference.advance(1)

    est = restored.query()
    true = reference.query().value
    print(f"after {2 * half} total ticks (restart at the midpoint):")
    print(f"  true decayed sum : {true:.4f}")
    print(f"  restored engine  : {est.value:.4f} "
          f"[{est.lower:.4f}, {est.upper:.4f}]")
    print(f"  bracket holds    : {est.contains(true)}")
    print(f"  relative error   : {est.relative_error_vs(true):.4%}")


if __name__ == "__main__":
    main()
