"""Quickstart: maintain time-decaying sums and averages over a stream.

Demonstrates the core API surface in ~60 lines:
  * pick a decay function (here polynomial decay, the paper's headline),
  * let the factory choose the storage-optimal engine,
  * feed a stream, query estimates with certified error brackets,
  * inspect the bit-level storage footprint.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    DecayingAverage,
    ExactDecayingSum,
    PolynomialDecay,
    make_decaying_sum,
)


def main() -> None:
    decay = PolynomialDecay(alpha=1.0)  # weight of an item aged a: 1/(a+1)

    # The factory picks WBMH for polynomial decay (paper section 5):
    # O(log N log log N) bits instead of keeping the stream around.
    engine = make_decaying_sum(decay, epsilon=0.05)
    reference = ExactDecayingSum(decay)  # ground truth, Omega(N) storage
    average = DecayingAverage(decay, epsilon=0.05)

    rng = random.Random(42)
    for _ in range(20_000):
        if rng.random() < 0.3:  # an event arrives ~30% of ticks
            value = rng.uniform(0.5, 2.0)
            engine.add(value)
            reference.add(value)
            average.add(value)
        engine.advance(1)
        reference.advance(1)
        average.advance(1)

    est = engine.query()
    true = reference.query().value
    avg = average.query()

    print(f"decay function      : {decay.describe()}")
    print(f"engine              : {type(engine).__name__}")
    print(f"true decayed sum    : {true:.4f}")
    print(f"estimate            : {est.value:.4f}")
    print(f"certified bracket   : [{est.lower:.4f}, {est.upper:.4f}]")
    print(f"bracket holds truth : {est.contains(true)}")
    print(f"relative error      : {est.relative_error_vs(true):.4%}")
    print(f"decayed average     : {avg.value:.4f}")

    sketch_bits = engine.storage_report()
    exact_bits = reference.storage_report()
    print(f"engine footprint    : {sketch_bits.per_stream_bits} bits "
          f"({sketch_bits.buckets} buckets)")
    print(f"exact footprint     : {exact_bits.per_stream_bits} bits "
          f"({exact_bits.buckets} retained time steps)")
    ratio = exact_bits.per_stream_bits / sketch_bits.per_stream_bits
    print(f"compression         : {ratio:.0f}x")


if __name__ == "__main__":
    main()
