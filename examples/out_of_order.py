"""Out-of-order streams: the lateness buffer restores the in-order contract.

Network telemetry rarely arrives sorted. This example shuffles a stream
within a lateness bound, feeds it through a LatenessBuffer-wrapped engine,
and compares against (a) the in-order ground truth and (b) what happens if
the unordered stream is naively force-fed (late events dropped).

Run:  python examples/out_of_order.py
"""

import random

from repro import LatenessBuffer, PolynomialDecay, make_decaying_sum
from repro.core.exact import ExactDecayingSum


def main() -> None:
    decay = PolynomialDecay(alpha=1.0)
    rng = random.Random(23)
    lateness = 12

    events = [(t, rng.uniform(0.5, 1.5))
              for t in range(3000) if rng.random() < 0.4]
    delivered = sorted(events, key=lambda e: e[0] + rng.uniform(0, lateness))

    buffered = LatenessBuffer(make_decaying_sum(decay, 0.05),
                              max_lateness=lateness)
    for when, value in delivered:
        buffered.observe(when, value)

    naive = ExactDecayingSum(decay)
    naive_dropped = 0
    for when, value in delivered:
        if when < naive.time:
            naive_dropped += 1  # a naive consumer must discard regressions
            continue
        naive.advance(when - naive.time)
        naive.add(value)

    # Ground truth at the buffer's safe frontier (queries answer there).
    truth = ExactDecayingSum(decay)
    for when, value in sorted(events):
        if when > buffered.frontier:
            break
        truth.advance(when - truth.time)
        truth.add(value)
    truth.advance(buffered.frontier - truth.time)

    est = buffered.query()
    print(f"events: {len(events)}, delivered shuffled within {lateness} ticks")
    print(f"watermark={buffered.watermark} frontier={buffered.frontier} "
          f"pending={buffered.pending()}")
    print(f"truth at frontier     : {truth.query().value:.4f}")
    print(f"buffered engine       : {est.value:.4f} "
          f"(bracket holds: {est.contains(truth.query().value)}; "
          f"late drops: {buffered.too_late_count})")
    if naive.time < buffered.frontier:
        naive.advance(buffered.frontier - naive.time)
    print(f"naive force-feed      : {naive.query().value:.4f} "
          f"(silently dropped {naive_dropped} of {len(events)} events)")


if __name__ == "__main__":
    main()
