"""Section 7 tour: decayed L_p norms, random selection, quantiles, variance.

A single value stream with a mid-stream regime change (values jump from the
~10 range to the ~90 range) drives all section 7 aggregates at once and
shows each of them following the recent regime while an undecayed baseline
lags.

Run:  python examples/decayed_statistics.py
"""

import random

from repro import NoDecay, PolynomialDecay
from repro.benchkit.reporting import format_table
from repro.moments.variance import DecayedVariance
from repro.sampling.quantiles import DecayedQuantileEstimator
from repro.sketches.lp_norm import DecayedLpNorm, ExactDecayedVector


def main() -> None:
    decay = PolynomialDecay(2.0)
    rng = random.Random(21)

    # Variance + quantiles over a stream with a regime change.
    variance = DecayedVariance(decay, epsilon=0.05)
    plain_variance = DecayedVariance(NoDecay(), epsilon=0.05)
    quantiles = DecayedQuantileEstimator(decay, repetitions=41, seed=5)
    plain_quantiles = DecayedQuantileEstimator(NoDecay(), repetitions=41, seed=6)

    for i in range(600):
        value = rng.uniform(5, 15) if i < 300 else rng.uniform(85, 95)
        for agg in (variance, plain_variance, quantiles, plain_quantiles):
            agg.add(value)
            agg.advance(1)

    print("After 300 low-regime values then 300 high-regime values:")
    rows = [
        ["decayed mean (POLYD-2)", round(variance.mean(), 2)],
        ["undecayed mean", round(plain_variance.mean(), 2)],
        ["decayed median", round(quantiles.median(), 2)],
        ["undecayed median", round(plain_quantiles.median(), 2)],
        ["decayed stddev", round(variance.stddev(), 2)],
        ["undecayed stddev", round(plain_variance.stddev(), 2)],
    ]
    print(format_table(["statistic", "value"], rows))
    print(
        "\nThe decayed statistics sit in the recent 85-95 regime; the"
        "\nundecayed ones are pulled toward the stale history."
    )

    # Decayed L1 norm of a 32-dimensional increment vector. Gentle decay
    # and a tight row epsilon keep the signed-row cancellation small (see
    # the repro.sketches.lp_norm docstring).
    dim = 32
    norm_decay = PolynomialDecay(1.0)
    sketch = DecayedLpNorm(norm_decay, p=1.0, dim=dim, rows=35, epsilon=0.01,
                           seed=9)
    exact = ExactDecayedVector(norm_decay, dim)
    for _ in range(400):
        c = rng.randrange(dim)
        a = rng.uniform(0.5, 2.0)
        sketch.add(c, a)
        exact.add(c, a)
        sketch.advance(1)
        exact.advance(1)
    true = exact.norm(1.0)
    est = sketch.query()
    print(f"\ndecayed L1 norm: true={true:.3f}  sketch={est.value:.3f}  "
          f"(35 rows, {est.relative_error_vs(true):.1%} error)")
    print(f"sketch footprint: {sketch.storage_report().per_stream_bits} bits, "
          f"independent of the vector dimension (o(d): the same sketch "
          f"serves d = 10^6)")


if __name__ == "__main__":
    main()
