"""Unit tests for time-decaying variance (paper section 7.3)."""

import math
import random
import statistics

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.moments.variance import DecayedVariance, SlidingWindowVariance


def exact_decayed_variance(decay, pairs, now):
    s0 = sum(decay.weight(now - t) for t, _ in pairs)
    s1 = sum(v * decay.weight(now - t) for t, v in pairs)
    s2 = sum(v * v * decay.weight(now - t) for t, v in pairs)
    if s0 == 0:
        return None
    return s2 - s1 * s1 / s0


class TestDecayedVariance:
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(1.0), ExponentialDecay(0.05)],
        ids=lambda d: d.describe(),
    )
    def test_matches_exact_formula(self, decay):
        dv = DecayedVariance(decay, epsilon=0.05)
        rng = random.Random(21)
        pairs = []
        for t in range(600):
            v = rng.uniform(0.0, 10.0)
            dv.add(v)
            pairs.append((t, v))
            dv.advance(1)
        true = exact_decayed_variance(decay, pairs, 600)
        assert dv.variance() == pytest.approx(true, rel=0.15)
        assert dv.mean() == pytest.approx(
            sum(v * decay.weight(600 - t) for t, v in pairs)
            / sum(decay.weight(600 - t) for t, _ in pairs),
            rel=0.1,
        )

    def test_exact_engine_factory_gives_exact_answer(self):
        decay = PolynomialDecay(1.0)
        dv = DecayedVariance(decay, engine_factory=lambda: ExactDecayingSum(decay))
        rng = random.Random(23)
        pairs = []
        for t in range(200):
            v = rng.uniform(1.0, 5.0)
            dv.add(v)
            pairs.append((t, v))
            dv.advance(1)
        true = exact_decayed_variance(decay, pairs, 200)
        assert dv.variance() == pytest.approx(true, rel=1e-9)

    def test_constant_stream_zero_variance(self):
        dv = DecayedVariance(
            PolynomialDecay(1.0),
            engine_factory=lambda: ExactDecayingSum(PolynomialDecay(1.0)),
        )
        for _ in range(50):
            dv.add(4.0)
            dv.advance(1)
        assert dv.variance() == pytest.approx(0.0, abs=1e-9)
        assert dv.stddev() == pytest.approx(0.0, abs=1e-5)

    def test_conditioning_flags_cancellation(self):
        # Large mean, small spread: conditioning number explodes.
        dv = DecayedVariance(
            PolynomialDecay(1.0),
            engine_factory=lambda: ExactDecayingSum(PolynomialDecay(1.0)),
        )
        rng = random.Random(29)
        for _ in range(100):
            dv.add(1000.0 + rng.uniform(-0.01, 0.01))
            dv.advance(1)
        assert dv.conditioning() > 1e6

    def test_variance_estimate_bracket(self):
        decay = PolynomialDecay(1.0)
        dv = DecayedVariance(decay, epsilon=0.05)
        rng = random.Random(31)
        pairs = []
        for t in range(400):
            v = rng.uniform(0.0, 10.0)
            dv.add(v)
            pairs.append((t, v))
            dv.advance(1)
        est = dv.variance_estimate()
        assert est.lower <= est.value <= est.upper

    def test_empty_raises(self):
        dv = DecayedVariance(PolynomialDecay(1.0))
        with pytest.raises(EmptyAggregateError):
            dv.variance()

    def test_rejects_negative(self):
        dv = DecayedVariance(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            dv.add(-1.0)


class TestSlidingWindowVariance:
    def test_matches_window_population_variance(self):
        window = 128
        sv = SlidingWindowVariance(window, epsilon=0.05)
        rng = random.Random(33)
        values = []
        for _ in range(1500):
            v = rng.uniform(0.0, 20.0)
            sv.add(v)
            values.append(v)
            sv.advance(1)
        # In-window items after the final advance: the last window-1 values.
        recent = values[-(window - 1):]
        true = statistics.pvariance(recent)
        assert sv.variance() == pytest.approx(true, rel=0.15)
        assert sv.mean() == pytest.approx(statistics.fmean(recent), rel=0.1)

    def test_sublinear_buckets(self):
        sv = SlidingWindowVariance(1000, epsilon=0.1)
        rng = random.Random(35)
        for _ in range(5000):
            sv.add(rng.uniform(0, 5))
            sv.advance(1)
        assert sv.bucket_count() < 300
        assert sv.count() <= 1000 + 1

    def test_sub_window_variances(self):
        # §7.3: "can retrieve the w-window variance for all w <= N".
        window = 512
        sv = SlidingWindowVariance(window, epsilon=0.05)
        rng = random.Random(41)
        values = []
        for _ in range(2000):
            v = rng.uniform(0.0, 20.0)
            sv.add(v)
            values.append(v)
            sv.advance(1)
        for w in (32, 128, 512):
            recent = values[-(w - 1):]
            true = statistics.pvariance(recent)
            assert sv.variance_window(w) == pytest.approx(true, rel=0.2), w

    def test_sub_window_validation(self):
        sv = SlidingWindowVariance(64)
        with pytest.raises(InvalidParameterError):
            sv.variance_window(0)
        with pytest.raises(InvalidParameterError):
            sv.variance_window(65)

    def test_variance_shift_detection(self):
        # Variance doubles when the value spread doubles.
        sv = SlidingWindowVariance(200, epsilon=0.05)
        rng = random.Random(37)
        for _ in range(400):
            sv.add(rng.uniform(0, 10))
            sv.advance(1)
        low_var = sv.variance()
        for _ in range(400):
            sv.add(rng.uniform(0, 20))
            sv.advance(1)
        assert sv.variance() > 2.5 * low_var

    def test_empty_window_raises(self):
        sv = SlidingWindowVariance(10)
        with pytest.raises(EmptyAggregateError):
            sv.variance()
        sv.add(1.0)
        sv.advance(50)
        with pytest.raises(EmptyAggregateError):
            sv.variance()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowVariance(0)
        with pytest.raises(InvalidParameterError):
            SlidingWindowVariance(10, epsilon=2.0)

    def test_storage_report(self):
        sv = SlidingWindowVariance(100)
        rng = random.Random(39)
        for _ in range(300):
            sv.add(rng.uniform(0, 10))
            sv.advance(1)
        rep = sv.storage_report()
        assert rep.engine == "sliwin-var"
        assert rep.per_stream_bits > 0
