"""Unit tests for higher decayed moments."""

import math
import random

import pytest

from repro.core.decay import NoDecay, PolynomialDecay
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.moments.higher import DecayedMoments


def exact_moments(decay, pairs, now, order):
    weights = [decay.weight(now - t) for t, _ in pairs]
    total = sum(weights)
    raw = [
        sum(w * v**j for w, (_, v) in zip(weights, pairs)) / total
        for j in range(order + 1)
    ]
    mean = raw[1]
    central = [
        sum(
            math.comb(k, j) * raw[j] * (-mean) ** (k - j)
            for j in range(k + 1)
        )
        for k in range(order + 1)
    ]
    return raw, central


def make_exact_engine(decay):
    return lambda: ExactDecayingSum(decay)


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_central_moments_match(self, order):
        decay = PolynomialDecay(1.0)
        dm = DecayedMoments(decay, max_order=4,
                            engine_factory=make_exact_engine(decay))
        rng = random.Random(order)
        pairs = []
        for t in range(300):
            v = rng.uniform(0, 10)
            dm.add(v)
            pairs.append((t, v))
            dm.advance(1)
        _, central = exact_moments(decay, pairs, 300, order)
        assert dm.central_moment(order) == pytest.approx(
            central[order], rel=1e-9, abs=1e-9
        )

    def test_approx_engines_track_truth(self):
        decay = PolynomialDecay(1.0)
        dm = DecayedMoments(decay, max_order=4, epsilon=0.02)
        rng = random.Random(11)
        pairs = []
        for t in range(600):
            v = rng.uniform(0, 10)
            dm.add(v)
            pairs.append((t, v))
            dm.advance(1)
        _, central = exact_moments(decay, pairs, 600, 4)
        assert dm.variance() == pytest.approx(central[2], rel=0.1)
        assert dm.central_moment(4) == pytest.approx(central[4], rel=0.3)


class TestShapeStatistics:
    def test_uniform_stream_shape(self):
        # Undecayed uniform[0,10]: skewness ~ 0, kurtosis ~ 1.8.
        dm = DecayedMoments(NoDecay(), max_order=4,
                            engine_factory=make_exact_engine(NoDecay()))
        rng = random.Random(13)
        for _ in range(20_000):
            dm.add(rng.uniform(0, 10))
            dm.advance(1)
        assert abs(dm.skewness()) < 0.1
        assert dm.kurtosis() == pytest.approx(1.8, rel=0.05)

    def test_decayed_skewness_follows_recent_regime(self):
        # Recent values exponential-ish (skewed); old values symmetric.
        decay = PolynomialDecay(2.0)
        dm = DecayedMoments(decay, max_order=3,
                            engine_factory=make_exact_engine(decay))
        rng = random.Random(17)
        for i in range(600):
            if i < 300:
                v = rng.uniform(4, 6)  # symmetric
            else:
                v = rng.expovariate(1.0)  # right-skewed
            dm.add(v)
            dm.advance(1)
        assert dm.skewness() > 0.5

    def test_mean_matches_variance_module(self):
        from repro.moments.variance import DecayedVariance

        decay = PolynomialDecay(1.0)
        dm = DecayedMoments(decay, max_order=2,
                            engine_factory=make_exact_engine(decay))
        dv = DecayedVariance(decay, engine_factory=make_exact_engine(decay))
        rng = random.Random(19)
        for _ in range(200):
            v = rng.uniform(0, 5)
            dm.add(v)
            dv.add(v)
            dm.advance(1)
            dv.advance(1)
        assert dm.mean() == pytest.approx(dv.mean())
        # DecayedVariance implements the paper's *unnormalized*
        # V^2 = sum g (f - A)^2; DecayedMoments central moments are the
        # normalized E_g[.] form. They differ by the weight total S_0.
        assert dm.variance() * dm.weight_total() == pytest.approx(
            dv.variance(), abs=1e-9
        )


class TestValidation:
    def test_order_bounds(self):
        dm = DecayedMoments(PolynomialDecay(1.0), max_order=3)
        dm.add(1.0)
        dm.advance(1)
        with pytest.raises(InvalidParameterError):
            dm.raw_moment(4)
        with pytest.raises(InvalidParameterError):
            dm.raw_moment(0)
        with pytest.raises(InvalidParameterError):
            dm.kurtosis()

    def test_empty_raises(self):
        dm = DecayedMoments(PolynomialDecay(1.0))
        with pytest.raises(EmptyAggregateError):
            dm.mean()

    def test_constant_stream_degenerate_shape(self):
        dm = DecayedMoments(NoDecay(), max_order=4,
                            engine_factory=make_exact_engine(NoDecay()))
        for _ in range(10):
            dm.add(5.0)
            dm.advance(1)
        with pytest.raises(EmptyAggregateError):
            dm.skewness()
        assert dm.conditioning(2) == math.inf

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            DecayedMoments(PolynomialDecay(1.0), max_order=0)
        dm = DecayedMoments(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            dm.add(-1.0)

    def test_storage_report(self):
        dm = DecayedMoments(PolynomialDecay(1.0), max_order=3, epsilon=0.1)
        dm.add(2.0)
        dm.advance(5)
        rep = dm.storage_report()
        assert rep.engine == "moments[k=3]"
        assert rep.per_stream_bits > 0
