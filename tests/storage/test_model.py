"""Unit tests for the storage accounting model."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.storage.model import (
    StorageReport,
    bits_for_count,
    bits_for_value,
    float_register_bits,
)


class TestBitHelpers:
    @pytest.mark.parametrize(
        "value,bits",
        [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10)],
    )
    def test_bits_for_value(self, value, bits):
        assert bits_for_value(value) == bits

    def test_bits_for_count_alias(self):
        assert bits_for_count(100) == bits_for_value(100)

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            bits_for_value(-1)

    def test_float_register_exponent_is_loglog(self):
        small = float_register_bits(256.0, mantissa_bits=8)
        large = float_register_bits(2.0**60, mantissa_bits=8)
        # log log growth: the exponent field grows by ~3 bits over 52
        # doublings of the magnitude.
        assert large - small <= 4

    def test_float_register_rejects_zero_mantissa(self):
        with pytest.raises(InvalidParameterError):
            float_register_bits(10.0, mantissa_bits=0)


class TestStorageReport:
    def test_per_stream_excludes_shared(self):
        r = StorageReport(
            engine="x",
            timestamp_bits=10,
            count_bits=20,
            register_bits=5,
            shared_bits=100,
        )
        assert r.per_stream_bits == 35
        assert r.total_bits == 135

    def test_combined_adds_fields(self):
        a = StorageReport(engine="a", buckets=2, count_bits=10, notes={"x": 1.0})
        b = StorageReport(engine="b", buckets=3, timestamp_bits=7, notes={"y": 2.0})
        c = a.combined(b)
        assert c.engine == "a+b"
        assert c.buckets == 5
        assert c.count_bits == 10
        assert c.timestamp_bits == 7
        assert c.notes == {"x": 1.0, "y": 2.0}

    def test_combined_custom_engine_name(self):
        a = StorageReport(engine="a")
        assert a.combined(StorageReport(engine="b"), engine="avg").engine == "avg"

    def test_rejects_negative_fields(self):
        with pytest.raises(InvalidParameterError):
            StorageReport(engine="x", count_bits=-1)
