"""Process-pool ingestion: pool answers vs serial replay, fleet adoption."""

from __future__ import annotations

import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.core.interfaces import make_decaying_sum
from repro.fleet import StreamFleet
from repro.parallel import parallel_fleet_ingest, parallel_ingest
from repro.streams.generators import StreamItem
from repro.streams.io import KeyedItem

# Pool tests pay process spawn cost; keep the traces small and the shard
# counts low -- correctness here, scale in benchmarks/.
TRACE_N = 400


def _trace(seed: int):
    rng = random.Random(seed)
    items, t = [], 0
    for _ in range(TRACE_N):
        t += rng.choice([0, 1, 1, 2])
        items.append(StreamItem(t, float(rng.randint(1, 4))))
    return items, t + 2


def _keyed_trace(seed: int):
    rng = random.Random(seed)
    keys = ["alpha", "beta", "gamma", "delta"]
    items, t = [], 0
    for _ in range(TRACE_N):
        t += rng.choice([0, 1, 1])
        items.append(KeyedItem(rng.choice(keys), t, float(rng.randint(1, 3))))
    return items, t + 2, keys


class TestParallelIngest:
    @pytest.mark.parametrize(
        "decay",
        [ExponentialDecay(0.05), SlidingWindowDecay(64), PolynomialDecay(1.2)],
        ids=lambda d: d.describe(),
    )
    def test_pool_answer_brackets_serial_truth(self, decay) -> None:
        items, end = _trace(21)
        merged = parallel_ingest(decay, items, epsilon=0.1, shards=2, end=end)
        oracle = ExactDecayingSum(decay)
        oracle.ingest(items, until=end)
        true = oracle.query().value
        est = merged.query()
        slack = 1e-9 * max(1.0, est.upper)
        assert est.lower - slack <= true <= est.upper + slack
        assert merged.time == end

    def test_register_engine_matches_serial_within_ulps(self) -> None:
        decay = ExponentialDecay(0.05)
        items, end = _trace(22)
        merged = parallel_ingest(decay, items, epsilon=0.1, shards=2, end=end)
        serial = make_decaying_sum(decay, 0.1)
        serial.ingest(items, until=end)
        assert merged.query().value == pytest.approx(
            serial.query().value, rel=1e-12
        )

    def test_single_shard_is_serial_and_bit_identical(self) -> None:
        decay = SlidingWindowDecay(48)
        items, end = _trace(23)
        merged = parallel_ingest(decay, items, epsilon=0.1, shards=1, end=end)
        serial = make_decaying_sum(decay, 0.1)
        serial.ingest(items, until=end)
        a, b = merged.query(), serial.query()
        assert (a.value, a.lower, a.upper) == (b.value, b.lower, b.upper)

    def test_empty_trace_yields_fresh_engine(self) -> None:
        engine = parallel_ingest(
            ExponentialDecay(0.1), [], epsilon=0.1, shards=4, end=7
        )
        assert engine.time == 7
        assert engine.query().value == 0.0

    def test_rejects_bad_parameters(self) -> None:
        items, end = _trace(24)
        with pytest.raises(InvalidParameterError):
            parallel_ingest(ExponentialDecay(0.1), items, shards=0)
        with pytest.raises(InvalidParameterError):
            parallel_ingest(
                ExponentialDecay(0.1), items, shards=2, end=items[0].time - 1
            )


class TestParallelFleetIngest:
    @pytest.mark.parametrize(
        "decay",
        [ExponentialDecay(0.1), SlidingWindowDecay(50)],
        ids=lambda d: d.describe(),
    )
    def test_pool_fleet_matches_serial_fleet(self, decay) -> None:
        items, end, keys = _keyed_trace(31)
        serial = StreamFleet(decay, 0.1)
        serial.observe_batch(items)
        serial.advance_to(end)
        pooled = parallel_fleet_ingest(
            decay, items, epsilon=0.1, shards=2, end=end
        )
        assert sorted(pooled.keys()) == sorted(serial.keys())
        assert pooled.time == end
        for key in keys:
            assert pooled.rating(key).value == pytest.approx(
                serial.rating(key).value, rel=1e-9
            )

    def test_rankings_survive_the_pool(self) -> None:
        items, end, _ = _keyed_trace(32)
        decay = ExponentialDecay(0.05)
        serial = StreamFleet(decay, 0.1)
        serial.observe_batch(items)
        serial.advance_to(end)
        pooled = parallel_fleet_ingest(
            decay, items, epsilon=0.1, shards=2, end=end
        )
        assert [k for k, _ in pooled.top(3)] == [k for k, _ in serial.top(3)]

    def test_single_shard_no_pool(self) -> None:
        items, end, keys = _keyed_trace(33)
        pooled = parallel_fleet_ingest(
            ExponentialDecay(0.1), items, epsilon=0.1, shards=1, end=end
        )
        assert sorted(pooled.keys()) == sorted(
            {item.key for item in items}
        )


class TestFleetMergeAndAdopt:
    def test_fleet_merge_generalizes_absorb(self) -> None:
        decay = SlidingWindowDecay(40)
        items, end, keys = _keyed_trace(41)
        serial = StreamFleet(decay, 0.1)
        serial.observe_batch(items)
        serial.advance_to(end)
        # Key-partition by hand, merge the two half-fleets.
        left = StreamFleet(decay, 0.1)
        right = StreamFleet(decay, 0.1)
        for item in items:
            target = left if item.key < "c" else right
            target.observe(item.key, item.value, when=item.time)
        left.advance_to(end)
        right.advance_to(end)
        left.merge(right)
        for key in keys:
            got = left.rating(key)
            want = serial.rating(key)
            assert got.lower <= want.value <= got.upper or (
                got.value == pytest.approx(want.value, rel=1e-9)
            )

    def test_merge_advances_younger_fleet(self) -> None:
        decay = ExponentialDecay(0.1)
        a = StreamFleet(decay, 0.1)
        b = StreamFleet(decay, 0.1)
        a.observe("x", 2.0, when=10)
        b.observe("y", 3.0)  # still at t=0 after this add... advance below
        b.advance_to(4)
        a.merge(b)
        assert a.time == 10
        # y's mass decayed from t=4 to t=10 during alignment.
        assert a.rating("y").value == pytest.approx(
            3.0 * decay.weight(10 - 0), rel=1e-9
        )

    def test_adopt_requires_clock_alignment(self) -> None:
        from repro.core.errors import TimeOrderError
        from repro.core.ewma import ExponentialSum

        fleet = StreamFleet(ExponentialDecay(0.1), 0.1)
        fleet.advance(5)
        engine = ExponentialSum(ExponentialDecay(0.1))
        with pytest.raises(TimeOrderError):
            fleet.adopt("k", engine)
        engine.advance(5)
        engine.add(2.0)
        fleet.adopt("k", engine)
        assert fleet.rating("k").value == pytest.approx(2.0)

    def test_adopt_existing_key_merges(self) -> None:
        from repro.core.ewma import ExponentialSum

        decay = ExponentialDecay(0.1)
        fleet = StreamFleet(decay, 0.1)
        fleet.observe("k", 1.0)
        extra = ExponentialSum(decay)
        extra.add(2.0)
        fleet.adopt("k", extra)
        assert fleet.rating("k").value == pytest.approx(3.0)
