"""ShardedDecayingSum: routing, memoised snapshot, merge, fallbacks."""

from __future__ import annotations

import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    NoDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import (
    InvalidParameterError,
    NotApplicableError,
    TimeOrderError,
)
from repro.core.exact import ExactDecayingSum
from repro.core.interfaces import make_decaying_sum
from repro.histograms.matias import ApproxBoundaryCEH
from repro.parallel import ShardedDecayingSum, shard_of
from repro.streams.generators import StreamItem

DECAYS = [
    ExponentialDecay(0.05),
    SlidingWindowDecay(64),
    PolynomialDecay(1.2),
    LinearDecay(100),
    NoDecay(),
]


def _trace(seed: int, n: int = 800):
    rng = random.Random(seed)
    items, t = [], 0
    for _ in range(n):
        t += rng.choice([0, 0, 1, 1, 2])
        items.append(StreamItem(t, float(rng.randint(1, 5))))
    return items, t + 3


class TestShardOf:
    def test_deterministic_and_in_range(self) -> None:
        for key in ["alpha", 42, ("a", 7), None]:
            idx = shard_of(key, 5)
            assert 0 <= idx < 5
            assert idx == shard_of(key, 5)

    def test_rejects_nonpositive_shards(self) -> None:
        with pytest.raises(InvalidParameterError):
            shard_of("k", 0)


class TestConstruction:
    def test_rejects_bad_parameters(self) -> None:
        with pytest.raises(InvalidParameterError):
            ShardedDecayingSum(NoDecay(), 0.1, shards=0)
        with pytest.raises(InvalidParameterError):
            ShardedDecayingSum(NoDecay(), 1.5)

    def test_factory_decay_must_match(self) -> None:
        with pytest.raises(InvalidParameterError):
            ShardedDecayingSum(
                SlidingWindowDecay(64),
                0.1,
                factory=lambda: make_decaying_sum(SlidingWindowDecay(32), 0.1),
            )


class TestQueryAgainstOracle:
    @pytest.mark.parametrize("decay", DECAYS, ids=lambda d: d.describe())
    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_bracket_contains_exact_sum(self, decay, shards) -> None:
        items, end = _trace(3)
        facade = ShardedDecayingSum(decay, 0.1, shards=shards)
        facade.ingest(items, until=end)
        oracle = ExactDecayingSum(decay)
        oracle.ingest(items, until=end)
        true = oracle.query().value
        est = facade.query()
        slack = 1e-9 * max(1.0, est.upper)
        assert est.lower - slack <= true <= est.upper + slack
        assert facade.time == end

    def test_round_robin_balances_items(self) -> None:
        facade = ShardedDecayingSum(NoDecay(), 0.1, shards=4)
        for _ in range(10):
            facade.add(1.0)
        totals = [r.query().value for r in facade.shard_view()]
        assert sorted(totals) == [2.0, 2.0, 3.0, 3.0]

    def test_add_batch_matches_add_loop(self) -> None:
        batched = ShardedDecayingSum(NoDecay(), 0.1, shards=3)
        looped = ShardedDecayingSum(NoDecay(), 0.1, shards=3)
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        batched.add_batch(values)
        for v in values:
            looped.add(v)
        for a, b in zip(batched.shard_view(), looped.shard_view()):
            assert a.query().value == b.query().value

    def test_keyed_routing_is_sticky(self) -> None:
        facade = ShardedDecayingSum(NoDecay(), 0.1, shards=4)
        for _ in range(6):
            facade.add_keyed("customer-7", 1.0)
        populated = [
            r.query().value for r in facade.shard_view() if r.query().value
        ]
        assert populated == [6.0]


class TestSnapshotMemo:
    def test_snapshot_reused_between_queries(self) -> None:
        items, end = _trace(4, n=200)
        facade = ShardedDecayingSum(SlidingWindowDecay(64), 0.1, shards=4)
        facade.ingest(items, until=end)
        facade.query()
        snapshot = facade._merged
        facade.query()
        assert facade._merged is snapshot

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda f: f.add(1.0),
            lambda f: f.add_keyed("k", 1.0),
            lambda f: f.add_batch([1.0, 2.0]),
            lambda f: f.advance(1),
        ],
        ids=["add", "add_keyed", "add_batch", "advance"],
    )
    def test_writes_invalidate_snapshot(self, mutate) -> None:
        facade = ShardedDecayingSum(SlidingWindowDecay(64), 0.1, shards=3)
        facade.add_batch([2.0, 1.0, 1.0])
        facade.query()
        snapshot = facade._merged
        mutate(facade)
        facade.query()
        assert facade._merged is not snapshot

    def test_snapshot_does_not_touch_replicas(self) -> None:
        # Merging the snapshot must clone: replica states stay intact and
        # a later query after more writes is still correct.
        facade = ShardedDecayingSum(SlidingWindowDecay(32), 0.1, shards=2)
        facade.add_batch([3.0, 2.0])
        before = [r.query().value for r in facade.shard_view()]
        facade.query()
        assert [r.query().value for r in facade.shard_view()] == before


class TestFacadeMerge:
    def test_merges_shardwise_and_aligns_clocks(self) -> None:
        items_a, end_a = _trace(5, n=300)
        items_b, _ = _trace(6, n=300)
        a = ShardedDecayingSum(ExponentialDecay(0.05), 0.1, shards=3)
        b = ShardedDecayingSum(ExponentialDecay(0.05), 0.1, shards=3)
        a.ingest(items_a, until=end_a)
        b.ingest(items_b)
        a.merge(b)
        assert a.time == max(end_a, b.time)
        combined = sorted(items_a + items_b, key=lambda it: it.time)
        oracle = ExactDecayingSum(ExponentialDecay(0.05))
        oracle.ingest(combined, until=a.time)
        assert a.query().value == pytest.approx(
            oracle.query().value, rel=1e-9
        )

    def test_rejects_mismatched_operands(self) -> None:
        a = ShardedDecayingSum(NoDecay(), 0.1, shards=2)
        with pytest.raises(InvalidParameterError):
            a.merge(a)
        with pytest.raises(InvalidParameterError):
            a.merge(ShardedDecayingSum(NoDecay(), 0.1, shards=3))
        with pytest.raises(InvalidParameterError):
            a.merge(ShardedDecayingSum(ExponentialDecay(0.1), 0.1, shards=2))

    def test_clock_only_moves_forward(self) -> None:
        facade = ShardedDecayingSum(NoDecay(), 0.1, shards=2)
        facade.advance(5)
        with pytest.raises(TimeOrderError):
            facade.advance_to(2)


class TestUnmergeableFallback:
    def _facade(self, shards: int = 3) -> ShardedDecayingSum:
        decay = PolynomialDecay(1.0)
        return ShardedDecayingSum(
            decay,
            0.2,
            shards=shards,
            factory=lambda: ApproxBoundaryCEH(decay, 0.2, seed=11),
        )

    def test_falls_back_to_widened_answers(self) -> None:
        facade = self._facade()
        for i in range(120):
            facade.add(1.0)
            if i % 3 == 0:
                facade.advance(1)
        est = facade.query()
        assert est.lower <= est.value <= est.upper
        assert not facade._mergeable

    def test_merged_engine_raises_not_applicable(self) -> None:
        facade = self._facade()
        facade.add(1.0)
        with pytest.raises(NotApplicableError):
            facade.merged_engine()


class TestBudgetAndStorage:
    def test_effective_epsilon_composes_across_shards(self) -> None:
        items, end = _trace(8, n=400)
        facade = ShardedDecayingSum(SlidingWindowDecay(64), 0.1, shards=4)
        facade.ingest(items, until=end)
        assert facade.effective_epsilon == pytest.approx(0.4)

    def test_register_engines_keep_their_epsilon(self) -> None:
        facade = ShardedDecayingSum(ExponentialDecay(0.1), 0.1, shards=4)
        facade.add_batch([1.0, 2.0, 3.0, 4.0])
        assert facade.effective_epsilon == pytest.approx(0.1)

    def test_storage_report_aggregates_replicas(self) -> None:
        facade = ShardedDecayingSum(SlidingWindowDecay(64), 0.1, shards=3)
        facade.add_batch([1.0] * 30)
        report = facade.storage_report()
        assert report.engine == "sharded[3]"
        assert report.buckets == sum(
            r.storage_report().buckets for r in facade.shard_view()
        )
