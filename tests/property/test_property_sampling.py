"""Property-based tests for MV/D lists and the decayed sampler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import PolynomialDecay
from repro.sampling.decayed_sampler import DecayedSampler
from repro.sampling.mvd import MVDList

# Streams: list of gaps; an item arrives after each gap.
gap_streams = st.lists(st.integers(0, 10), min_size=1, max_size=150)


class TestMVDProperties:
    @settings(max_examples=80, deadline=None)
    @given(gap_streams, st.integers(0, 2**31))
    def test_ranks_strictly_increasing(self, gaps, seed):
        mvd = MVDList(seed=seed)
        for g in gaps:
            mvd.advance(g)
            mvd.add()
        ranks = [e.rank for e in mvd.entries()]
        assert all(a < b for a, b in zip(ranks, ranks[1:]))

    @settings(max_examples=80, deadline=None)
    @given(gap_streams, st.integers(0, 2**31))
    def test_last_entry_is_last_item(self, gaps, seed):
        mvd = MVDList(seed=seed)
        last_time = 0
        for g in gaps:
            mvd.advance(g)
            mvd.add()
            last_time = mvd.time
        assert mvd.entries()[-1].time == last_time

    @settings(max_examples=80, deadline=None)
    @given(gap_streams, st.integers(0, 2**31), st.integers(1, 200))
    def test_window_sample_in_window(self, gaps, seed, window):
        mvd = MVDList(seed=seed)
        for g in gaps:
            mvd.advance(g)
            mvd.add()
        e = mvd.window_sample(window)
        if e is not None:
            assert mvd.time - e.time < window


class TestSamplerProperties:
    @settings(max_examples=50, deadline=None)
    @given(gap_streams, st.integers(0, 2**20), st.floats(0.2, 3.0))
    def test_distribution_sums_to_one_and_supported(self, gaps, seed, alpha):
        s = DecayedSampler(PolynomialDecay(alpha), seed=seed)
        times = set()
        for g in gaps:
            s.advance(g)
            s.add()
            times.add(s.time)
        dist = s.selection_distribution()
        assert abs(sum(dist.values()) - 1.0) < 1e-9
        assert set(dist) <= times

    @settings(max_examples=50, deadline=None)
    @given(gap_streams, st.integers(0, 2**20))
    def test_sample_returns_observed_item(self, gaps, seed):
        s = DecayedSampler(PolynomialDecay(1.0), seed=seed)
        payloads = set()
        for i, g in enumerate(gaps):
            s.advance(g)
            s.add(i)
            payloads.add(i)
        assert s.sample().payload in payloads
