"""Property-based tests for decay functions (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)

decay_functions = st.one_of(
    st.floats(0.01, 5.0).map(ExponentialDecay),
    st.integers(1, 10_000).map(SlidingWindowDecay),
    st.floats(0.05, 5.0).map(PolynomialDecay),
    st.integers(1, 10_000).map(LinearDecay),
    st.floats(2.0, 16.0).map(LogarithmicDecay),
)

ages = st.integers(0, 100_000)


class TestUniversalDecayProperties:
    @given(decay_functions, ages)
    def test_weights_non_negative(self, g, age):
        assert g.weight(age) >= 0.0

    @given(decay_functions, ages, st.integers(0, 1000))
    def test_non_increasing(self, g, age, delta):
        assert g.weight(age) >= g.weight(age + delta) - 1e-15

    @given(decay_functions)
    def test_support_consistent_with_weights(self, g):
        sup = g.support()
        if sup is not None:
            assert g.weight(sup) > 0.0
            assert g.weight(sup + 1) == 0.0

    @given(decay_functions, ages)
    def test_weight_matches_call(self, g, age):
        assert g(age) == g.weight(age)


class TestRatioProperty:
    @given(st.floats(0.05, 5.0).map(PolynomialDecay), ages, st.integers(1, 100))
    def test_polyd_weights_converge(self, g, age, delta):
        # The Figure 1 property: g(a)/g(a+delta) is non-increasing in a.
        r1 = g.weight(age) / g.weight(age + delta)
        r2 = g.weight(age + 1) / g.weight(age + 1 + delta)
        assert r2 <= r1 * (1 + 1e-12)

    @given(st.floats(0.01, 3.0).map(ExponentialDecay), ages, st.integers(1, 50))
    def test_expd_ratio_constant(self, g, age, delta):
        if g.lam * (age + delta) > 600:  # avoid underflow to 0
            return
        r1 = g.weight(age) / g.weight(age + delta)
        r2 = g.weight(age + 7) / g.weight(age + 7 + delta)
        assert math.isclose(r1, r2, rel_tol=1e-9)


class TestTableDecayProperties:
    @settings(max_examples=50)
    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30).map(
            lambda xs: sorted(xs, reverse=True)
        )
    )
    def test_any_sorted_table_is_valid(self, weights):
        g = TableDecay(weights, tail=0.0)
        for a in range(len(weights)):
            assert g.weight(a) == weights[a]
        assert g.weight(len(weights) + 5) == 0.0
