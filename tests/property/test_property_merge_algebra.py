"""Property: ``merge`` is a commutative monoid action on summaries.

Linearity of the decayed sum makes shard order irrelevant in exact
arithmetic; these properties pin down how much of that survives floats,
per engine family:

* *merge-with-empty is the identity* -- bit-identical triplets for every
  factory engine (adding zero registers, interleaving with an empty
  bucket list, and absorbing an all-zero lattice are all structural
  no-ops);
* *commutativity* -- bit-identical for the register engines (IEEE float
  addition commutes), bracket-sound against the exact oracle for the
  histogram engines (their bucket interleavings may legitimately differ
  by operand order, but every interleaving must still contain the true
  sum);
* *associativity* -- bit-identical for the exact engine on integer
  values (integer sums are exact in floats up to 2**53), within ~1 ulp
  for the other register engines (their registers hold *decayed* floats,
  and float addition does not associate), bracket-sound for the
  histogram engines.

Traces are integer-valued throughout: the sliding-window EH rejects
fractional counts by contract, and integers are what make the register
tier's bit-identity claims exact rather than approximate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    ExponentialDecay,
    GaussianDecay,
    LinearDecay,
    LogarithmicDecay,
    PolyexponentialDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)
from repro.core.exact import ExactDecayingSum
from repro.core.ewma import ExponentialSum, GeneralPolyexpSum, PolyexponentialSum
from repro.core.interfaces import make_decaying_sum
from repro.serialize import engine_from_dict, engine_to_dict
from repro.streams.generators import StreamItem

# One strategy arm per make_decaying_sum routing branch (the nine cells
# of the conformance matrix): EXPD register, sliding-window EH, WBMH
# (polynomial and logarithmic), cascaded EH (linear, gaussian, table),
# and both section 3.4 pipelines.
decays = st.one_of(
    st.floats(0.01, 2.0).map(ExponentialDecay),
    st.integers(4, 128).map(SlidingWindowDecay),
    st.floats(0.6, 2.5).map(PolynomialDecay),
    st.just(LogarithmicDecay()),
    st.integers(40, 300).map(LinearDecay),
    st.floats(10.0, 80.0).map(GaussianDecay),
    st.just(TableDecay([1.0, 0.8, 0.6, 0.4, 0.2], tail=0.1)),
    st.tuples(st.integers(1, 3), st.floats(0.05, 1.0)).map(
        lambda kl: PolyexponentialDecay(*kl)
    ),
    st.tuples(
        st.lists(st.floats(0.1, 3.0), min_size=1, max_size=3),
        st.floats(0.05, 1.0),
    ).map(lambda cl: PolyExpPolynomialDecay(*cl)),
)

# Sparse integer-valued trace: (gap, value) pairs, cumulated to times.
trace_steps = st.lists(
    st.tuples(st.integers(0, 6), st.integers(1, 9)), max_size=30
)

_REGISTER_ENGINES = (
    ExactDecayingSum,
    ExponentialSum,
    PolyexponentialSum,
    GeneralPolyexpSum,
)


def _materialize(steps):
    items = []
    t = 0
    for gap, value in steps:
        t += gap
        items.append(StreamItem(t, float(value)))
    return items


def _build(decay, items, end):
    engine = make_decaying_sum(decay, 0.1)
    engine.ingest(items, until=end)
    return engine


def _clone(engine):
    return engine_from_dict(engine_to_dict(engine))


def _triplet(engine):
    est = engine.query()
    return est.value, est.lower, est.upper


def _oracle_value(decay, items, end):
    oracle = ExactDecayingSum(decay)
    oracle.ingest(items, until=end)
    return oracle.query().value


def _end_time(*traces):
    return max((it.time for trace in traces for it in trace), default=0) + 1


@settings(max_examples=60, deadline=None)
@given(decays, trace_steps)
def test_merge_with_empty_is_identity(decay, steps):
    items = _materialize(steps)
    end = _end_time(items)
    engine = _build(decay, items, end)
    before = _triplet(engine)
    empty = make_decaying_sum(decay, 0.1)
    engine.merge(empty)
    assert _triplet(engine) == before
    assert engine.time == end


@settings(max_examples=60, deadline=None)
@given(decays, trace_steps)
def test_empty_merge_absorbs_the_stream(decay, steps):
    # The mirror identity: folding a populated engine into a fresh one
    # must reproduce the populated engine's answer (registers add onto
    # zero; empty histograms adopt the other's buckets wholesale).
    items = _materialize(steps)
    end = _end_time(items)
    engine = _build(decay, items, end)
    want = _triplet(engine)
    empty = make_decaying_sum(decay, 0.1)
    empty.merge(engine)
    assert _triplet(empty) == want


@settings(max_examples=60, deadline=None)
@given(decays, trace_steps, trace_steps)
def test_merge_commutes(decay, steps_a, steps_b):
    items_a = _materialize(steps_a)
    items_b = _materialize(steps_b)
    end = _end_time(items_a, items_b)
    a = _build(decay, items_a, end)
    b = _build(decay, items_b, end)
    ab = _clone(a)
    ab.merge(_clone(b))
    ba = _clone(b)
    ba.merge(_clone(a))
    if isinstance(a, _REGISTER_ENGINES):
        assert _triplet(ab) == _triplet(ba)
    else:
        true = _oracle_value(decay, sorted(
            items_a + items_b, key=lambda it: it.time
        ), end)
        for merged in (ab, ba):
            est = merged.query()
            slack = 1e-9 * max(1.0, est.upper)
            assert est.lower - slack <= true <= est.upper + slack
            assert est.lower <= est.value <= est.upper


@settings(max_examples=40, deadline=None)
@given(decays, trace_steps, trace_steps, trace_steps)
def test_merge_associates(decay, steps_a, steps_b, steps_c):
    items = [_materialize(s) for s in (steps_a, steps_b, steps_c)]
    end = _end_time(*items)
    a, b, c = (_build(decay, part, end) for part in items)
    left = _clone(a)
    left.merge(_clone(b))
    left.merge(_clone(c))
    right_tail = _clone(b)
    right_tail.merge(_clone(c))
    right = _clone(a)
    right.merge(right_tail)
    if isinstance(a, ExactDecayingSum):
        assert _triplet(left) == _triplet(right)
    elif isinstance(a, _REGISTER_ENGINES):
        for got, want in zip(_triplet(left), _triplet(right)):
            assert abs(got - want) <= 1e-12 * max(1.0, abs(want))
    else:
        true = _oracle_value(decay, sorted(
            items[0] + items[1] + items[2], key=lambda it: it.time
        ), end)
        for merged in (left, right):
            est = merged.query()
            slack = 1e-9 * max(1.0, est.upper)
            assert est.lower - slack <= true <= est.upper + slack
