"""Property-based tests: histogram engines never violate their contracts.

For arbitrary streams (random arrival patterns, values, gaps) and arbitrary
query times, every engine must (a) keep its certified bracket around the
ground truth and (b) respect its structural invariants.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import PolynomialDecay, SlidingWindowDecay
from repro.core.exact import ExactDecayingSum
from repro.histograms.ceh import CascadedEH
from repro.histograms.domination import DominationHistogram
from repro.histograms.eh import ExponentialHistogram
from repro.histograms.wbmh import WBMH

# A stream is a list of (gap, value) pairs: advance by gap, then add value.
unit_streams = st.lists(
    st.tuples(st.integers(0, 20), st.just(1)), min_size=1, max_size=120
)
real_streams = st.lists(
    st.tuples(st.integers(0, 20), st.floats(0.01, 50.0)),
    min_size=1,
    max_size=120,
)
epsilons = st.sampled_from([0.05, 0.1, 0.25, 0.5])


def feed(engine, exact, stream):
    for gap, value in stream:
        engine.advance(gap)
        exact.advance(gap)
        engine.add(value)
        exact.add(value)


class TestEHProperties:
    @settings(max_examples=60, deadline=None)
    @given(unit_streams, epsilons, st.integers(1, 300))
    def test_bracket_always_contains_truth(self, stream, eps, window):
        eh = ExponentialHistogram(window, eps)
        exact = ExactDecayingSum(SlidingWindowDecay(window))
        feed(eh, exact, stream)
        est = eh.query()
        true = exact.query().value
        assert est.lower - 1e-9 <= true <= est.upper + 1e-9
        if true > 0:
            assert abs(est.value - true) / true <= eps + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(unit_streams, epsilons)
    def test_power_of_two_sizes(self, stream, eps):
        eh = ExponentialHistogram(None, eps)
        exact = ExactDecayingSum(PolynomialDecay(1.0))
        feed(eh, exact, stream)
        for b in eh.bucket_view():
            size = int(b.count)
            assert size >= 1 and size & (size - 1) == 0


class TestDominationProperties:
    @settings(max_examples=60, deadline=None)
    @given(real_streams, epsilons, st.integers(1, 300))
    def test_bracket_and_total(self, stream, eps, window):
        h = DominationHistogram(window, eps)
        exact = ExactDecayingSum(SlidingWindowDecay(window))
        feed(h, exact, stream)
        est = h.query()
        true = exact.query().value
        assert est.lower - 1e-9 <= true <= est.upper + 1e-9
        total = sum(v for _, v in stream)
        assert h.total_in_buckets <= total + 1e-6


class TestCEHProperties:
    @settings(max_examples=60, deadline=None)
    @given(unit_streams, epsilons, st.floats(0.1, 3.0))
    def test_polyd_bracket_and_eps(self, stream, eps, alpha):
        decay = PolynomialDecay(alpha)
        ceh = CascadedEH(decay, eps)
        exact = ExactDecayingSum(decay)
        feed(ceh, exact, stream)
        est = ceh.query()
        true = exact.query().value
        assert est.lower - 1e-9 <= true <= est.upper + 1e-9
        if true > 1e-12:
            assert abs(est.value - true) / true <= eps + 1e-9


class TestWBMHProperties:
    @settings(max_examples=60, deadline=None)
    @given(real_streams, epsilons, st.floats(0.1, 3.0))
    def test_polyd_bracket_and_eps(self, stream, eps, alpha):
        decay = PolynomialDecay(alpha)
        w = WBMH(decay, eps)
        exact = ExactDecayingSum(decay)
        feed(w, exact, stream)
        est = w.query()
        true = exact.query().value
        assert est.lower - 1e-9 <= true <= est.upper * (1 + 1e-9) + 1e-9
        if true > 1e-12:
            assert abs(est.value - true) / true <= eps + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(real_streams, st.floats(0.3, 3.0))
    def test_buckets_cover_disjoint_intervals(self, stream, alpha):
        w = WBMH(PolynomialDecay(alpha), 0.2)
        exact = ExactDecayingSum(PolynomialDecay(alpha))
        feed(w, exact, stream)
        spans = [(b.start, b.end) for b in w.bucket_view()]
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2  # ordered and disjoint

    @settings(max_examples=40, deadline=None)
    @given(real_streams, st.floats(0.3, 3.0))
    def test_total_count_preserved_within_drift(self, stream, alpha):
        w = WBMH(PolynomialDecay(alpha), 0.2)
        exact = ExactDecayingSum(PolynomialDecay(alpha))
        feed(w, exact, stream)
        total = sum(v for _, v in stream)
        stored = sum(b.count for b in w.bucket_view())
        # Quantization only shrinks counts, never below (1 - eps) * total.
        assert stored <= total + 1e-6
        assert stored >= total * (1 - 0.2) - 1e-6
