"""Property: batching is bit-identical to item-at-a-time ingestion.

The batch surface (``add_batch`` / ``ingest``) exists purely for speed --
the PR's contract is that it does not perturb any engine's state by even
one ulp. These properties drive every factory engine both ways over
arbitrary traces and arbitrary batch splits and require *exact* float
equality of the certified estimate triplet (value, lower, upper), not
approximate closeness: the fold paths must replicate the sequential
left-to-right accumulation order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    PolyexponentialDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.interfaces import make_decaying_sum
from repro.streams.generators import StreamItem

decays = st.one_of(
    st.floats(0.01, 3.0).map(ExponentialDecay),
    st.integers(1, 200).map(SlidingWindowDecay),
    st.floats(0.5, 3.0).map(PolynomialDecay),
    st.integers(50, 500).map(LinearDecay),
    st.tuples(st.integers(1, 3), st.floats(0.05, 1.0)).map(
        lambda kl: PolyexponentialDecay(*kl)
    ),
    st.tuples(
        st.lists(st.floats(0.1, 4.0), min_size=1, max_size=3),
        st.floats(0.05, 1.0),
    ).map(lambda cl: PolyExpPolynomialDecay(*cl)),
)

# Integer counts (as floats): the sliding-window EH rejects fractional
# values by contract, and integers exercise the bulk binary decomposition.
values = st.integers(0, 30).map(float)

# A batch split IS the generated shape: a list of chunks. The sequential
# reference flattens it; the batched engine consumes it chunk by chunk.
chunked_values = st.lists(
    st.lists(values, max_size=8), max_size=8
)

# Sparse trace: (gap-to-previous-arrival, value) pairs, cumulated.
trace_steps = st.lists(
    st.tuples(st.integers(0, 7), values), max_size=40
)


def triplet(engine):
    est = engine.query()
    return est.value, est.lower, est.upper


class TestAddBatchEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(decays, chunked_values)
    def test_any_batch_split_is_bit_identical(self, decay, chunks):
        sequential = make_decaying_sum(decay, 0.1)
        batched = make_decaying_sum(decay, 0.1)
        for chunk in chunks:
            for v in chunk:
                sequential.add(v)
            batched.add_batch(chunk)
            # Desynchronize from bucket boundaries a little: compare both
            # mid-stream and after an advance.
            assert triplet(batched) == triplet(sequential)
            sequential.advance(1)
            batched.advance(1)
        assert batched.time == sequential.time
        assert triplet(batched) == triplet(sequential)


class TestIngestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(decays, trace_steps, st.integers(0, 10))
    def test_ingest_equals_item_replay(self, decay, steps, tail):
        items = []
        t = 0
        for gap, v in steps:
            t += gap
            items.append(StreamItem(t, v))
        until = t + tail

        manual = make_decaying_sum(decay, 0.1)
        for item in items:
            if item.time > manual.time:
                manual.advance(item.time - manual.time)
            manual.add(item.value)
        if until > manual.time:
            manual.advance(until - manual.time)

        batched = make_decaying_sum(decay, 0.1)
        batched.ingest(items, until=until)

        assert batched.time == manual.time == until
        assert triplet(batched) == triplet(manual)
