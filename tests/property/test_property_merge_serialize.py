"""Property tests: distributed merge and checkpoint round-trips.

Two deep invariants:

* ``absorb``: merging WBMHs driven in lock-step equals one WBMH fed the
  summed stream (stream-independent lattices make this exact).
* ``serialize``: dict -> JSON -> restore is the identity on engine
  behaviour, for arbitrary prefixes and arbitrary continuations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.core.ewma import ExponentialSum
from repro.histograms.ceh import CascadedEH
from repro.histograms.wbmh import WBMH
from repro.serialize import engine_from_dict, engine_to_dict

# (gap, value-for-A, value-for-B) triples.
pair_streams = st.lists(
    st.tuples(st.integers(0, 6), st.floats(0.0, 5.0), st.floats(0.0, 5.0)),
    min_size=1,
    max_size=100,
)

gap_value_streams = st.lists(
    st.tuples(st.integers(0, 6), st.floats(0.0, 5.0)),
    min_size=1,
    max_size=100,
)


class TestAbsorbProperties:
    @settings(max_examples=40, deadline=None)
    @given(pair_streams, st.floats(0.3, 2.5))
    def test_wbmh_absorb_equals_union(self, stream, alpha):
        decay = PolynomialDecay(alpha)
        a = WBMH(decay, 0.2, quantize=False)
        b = WBMH(decay, 0.2, quantize=False)
        union = WBMH(decay, 0.2, quantize=False)
        for gap, va, vb in stream:
            a.advance(gap)
            b.advance(gap)
            union.advance(gap)
            if va:
                a.add(va)
            if vb:
                b.add(vb)
            if va + vb:
                union.add(va + vb)
        a.absorb(b)
        assert a.bucket_arrival_sets() == union.bucket_arrival_sets()
        assert a.query().value == pytest.approx(union.query().value)

    @settings(max_examples=40, deadline=None)
    @given(pair_streams, st.floats(0.01, 1.0))
    def test_ewma_absorb_equals_union(self, stream, lam):
        decay = ExponentialDecay(lam)
        a = ExponentialSum(decay)
        b = ExponentialSum(decay)
        union = ExponentialSum(decay)
        for gap, va, vb in stream:
            for e in (a, b, union):
                e.advance(gap)
            a.add(va)
            b.add(vb)
            union.add(va + vb)
        a.absorb(b)
        assert a.query().value == pytest.approx(union.query().value)


class TestSerializeProperties:
    @settings(max_examples=40, deadline=None)
    @given(gap_value_streams, gap_value_streams, st.floats(0.3, 2.5))
    def test_wbmh_roundtrip_continuation(self, prefix, suffix, alpha):
        decay = PolynomialDecay(alpha)
        original = WBMH(decay, 0.2)
        for gap, v in prefix:
            original.advance(gap)
            if v:
                original.add(v)
        restored = engine_from_dict(
            json.loads(json.dumps(engine_to_dict(original)))
        )
        for gap, v in suffix:
            original.advance(gap)
            restored.advance(gap)
            if v:
                original.add(v)
                restored.add(v)
        assert restored.bucket_arrival_sets() == original.bucket_arrival_sets()
        est_o, est_r = original.query(), restored.query()
        assert est_r.value == pytest.approx(est_o.value)
        assert est_r.lower == pytest.approx(est_o.lower)
        assert est_r.upper == pytest.approx(est_o.upper)

    @settings(max_examples=40, deadline=None)
    @given(gap_value_streams, st.floats(0.2, 2.0))
    def test_ceh_roundtrip(self, prefix, alpha):
        decay = PolynomialDecay(alpha)
        original = CascadedEH(decay, 0.15, backend="domination")
        for gap, v in prefix:
            original.advance(gap)
            if v:
                original.add(v)
        restored = engine_from_dict(
            json.loads(json.dumps(engine_to_dict(original)))
        )
        assert restored.query().value == pytest.approx(original.query().value)
        # Continue both with a fixed coda and compare again.
        for e in (original, restored):
            e.add(1.0)
            e.advance(3)
            e.add(2.0)
        assert restored.query().value == pytest.approx(original.query().value)
