"""Property: forward-decay state is a pure function of the item multiset.

The block accumulator's whole design exists for one promise: ingesting
any permutation of a trace -- shuffled, reversed, or split arbitrarily
between ``ingest``/``add_at``/``merge`` -- produces the *bit-identical*
certified estimate triplet (value, lower, upper), not merely a close one.
These properties are the Hypothesis-driven twin of conformance law CL009.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forward import ForwardDecay, ForwardDecaySum
from repro.streams.generators import StreamItem

decays = st.one_of(
    st.floats(0.001, 2.0).map(lambda r: ForwardDecay("exp", r)),
    st.floats(0.1, 3.0).map(lambda r: ForwardDecay("poly", r)),
)

# Values cross every banking branch: zero, sub-unit (as_integer_ratio),
# the fixed 2**-52 grid, and the integer-valued >= 2**52 regime.
values = st.one_of(
    st.just(0.0),
    st.floats(1e-9, 0.99),
    st.floats(1.0, 1e6),
    st.just(float(2**60)),
)

traces = st.lists(
    st.tuples(st.integers(0, 5000), values).map(
        lambda tv: StreamItem(*tv)
    ),
    max_size=60,
)


def triplet(engine):
    est = engine.query()
    return est.value, est.lower, est.upper


@settings(max_examples=150, deadline=None)
@given(decay=decays, trace=traces, seed=st.integers(0, 2**32 - 1))
def test_any_permutation_is_bit_identical(decay, trace, seed):
    import random

    end = max((i.time for i in trace), default=0) + 10
    base = ForwardDecaySum(decay)
    base.ingest(trace, until=end)
    shuffled = list(trace)
    random.Random(seed).shuffle(shuffled)
    for perm in (shuffled, list(reversed(trace))):
        other = ForwardDecaySum(decay)
        other.ingest(perm, until=end)
        assert other.time == base.time
        assert triplet(other) == triplet(base)


@settings(max_examples=100, deadline=None)
@given(
    decay=decays,
    trace=traces,
    split=st.integers(0, 60),
)
def test_merge_of_any_split_is_bit_identical(decay, trace, split):
    end = max((i.time for i in trace), default=0) + 10
    whole = ForwardDecaySum(decay)
    whole.ingest(trace, until=end)
    left = ForwardDecaySum(decay)
    right = ForwardDecaySum(decay)
    left.ingest(trace[:split], until=end)
    right.ingest(trace[split:], until=end)
    left.merge(right)
    assert triplet(left) == triplet(whole)


@settings(max_examples=100, deadline=None)
@given(decay=decays, trace=traces)
def test_add_at_replay_matches_ingest(decay, trace):
    end = max((i.time for i in trace), default=0) + 10
    batched = ForwardDecaySum(decay)
    batched.ingest(trace, until=end)
    itemized = ForwardDecaySum(decay)
    for item in trace:
        itemized.add_at(item.time, item.value)
    itemized.advance_to(end)
    assert triplet(itemized) == triplet(batched)
