"""Property: the optimized histogram kernels replicate unary replay.

The hot-path kernel pass (flattened EH carry propagation, the small-batch
unary cutover, the WBMH event-driven clock skip and memoized merge
scheduling) promises *bit-identity*, not approximate agreement: the
optimized engines must produce the same bucket lists -- starts, ends,
counts, levels -- as the pre-optimization unary replay, for every trace.
These properties pin that at the bucket level (stronger than the query
triplet used by ``test_property_batching``), and assert the EH bucket
bound ``O((1/eps) * log W)`` that the flattened cascade must not loosen.

The structure-of-arrays pass adds a second axis: every engine runs its
bulk and organic paths under either the numpy or the pure-python kernel
twins (:func:`repro.histograms.soa.resolve_backend`).  The cross-backend
classes below drive both twins over the same hypothesis traces --
through ``ingest`` (the bulk-kernel entry) *and* organic replay -- and
require identical bucket columns, plus the EH invariant that counts stay
Python ints under the numpy backend (numpy scalars would poison the
big-int carry arithmetic downstream).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.histograms.ceh import CascadedEH
from repro.histograms.eh import ExponentialHistogram
from repro.histograms.soa import HAVE_NUMPY
from repro.histograms.wbmh import WBMH
from repro.streams.generators import StreamItem

epsilons = st.sampled_from([0.05, 0.1, 0.3])
windows = st.one_of(st.none(), st.integers(4, 400))

# Integer counts as floats (the EH contract); zeros exercise skip paths.
counts = st.integers(0, 40).map(float)

# A trace is a list of (advance-gap, batch-of-counts) rounds.
eh_rounds = st.lists(
    st.tuples(st.integers(0, 12), st.lists(counts, max_size=10)),
    max_size=25,
)

wbmh_decays = st.one_of(
    st.floats(0.5, 2.5).map(PolynomialDecay),
    st.floats(0.005, 0.5).map(ExponentialDecay),
)
wbmh_rounds = st.lists(
    st.tuples(
        st.integers(0, 200),
        st.lists(st.floats(0.0, 5.0), max_size=6),
    ),
    max_size=20,
)


def eh_state(hist: ExponentialHistogram):
    return (
        hist.time,
        [(b.start, b.end, b.count, b.level) for b in hist.bucket_view()],
        dict(hist._per_size),
    )


def wbmh_state(hist: WBMH):
    return (
        hist.time,
        [(b.start, b.end, b.count, b.level) for b in hist.bucket_view()],
    )


class TestEhKernelIdentity:
    @settings(max_examples=150, deadline=None)
    @given(windows, epsilons, eh_rounds)
    def test_batch_path_matches_unary_reference(self, window, eps, rounds):
        """``add_batch``/``add`` (flattened + cutover) vs the retained
        ``_add_ones_unary`` loop: identical buckets after every round."""
        fast = ExponentialHistogram(window, eps)
        unary = ExponentialHistogram(window, eps)
        for gap, batch in rounds:
            fast.advance(gap)
            unary.advance(gap)
            fast.add_batch(batch)
            for value in batch:
                unary._add_ones_unary(int(value))
            assert eh_state(fast) == eh_state(unary)

    @settings(max_examples=150, deadline=None)
    @given(windows, epsilons, eh_rounds)
    def test_bucket_count_bound(self, window, eps, rounds):
        """At most ``m + 1`` buckets per size and ``(m + 1) * O(log W)``
        overall, where ``W`` is the live item count (the paper's EH
        space bound, which the flattened cascade must not loosen)."""
        hist = ExponentialHistogram(window, eps)
        for gap, batch in rounds:
            hist.advance(gap)
            hist.add_batch(batch)
            per_size = hist._per_size
            for size, n in per_size.items():
                assert n <= hist.buckets_per_size + 1, (size, n)
            total = sum(size * n for size, n in per_size.items())
            if total:
                distinct_sizes = total.bit_length()  # log2(W) + 1 sizes
                bound = (hist.buckets_per_size + 1) * (distinct_sizes + 1)
                assert len(hist.bucket_view()) <= bound


class TestCehKernelIdentity:
    @settings(max_examples=100, deadline=None)
    @given(epsilons, eh_rounds)
    def test_ingest_matches_item_replay(self, eps, rounds):
        items = []
        t = 0
        for gap, batch in rounds:
            t += gap
            for value in batch:
                items.append(StreamItem(t, value))
        fast = CascadedEH(PolynomialDecay(1.0), eps)
        fast.ingest(items)
        replay = CascadedEH(PolynomialDecay(1.0), eps)
        for item in items:
            if item.time > replay.time:
                replay.advance(item.time - replay.time)
            replay.add(item.value)
        assert fast.time == replay.time
        assert fast.histogram.bucket_view() == replay.histogram.bucket_view()


class TestWbmhKernelIdentity:
    @settings(max_examples=100, deadline=None)
    @given(wbmh_decays, epsilons, wbmh_rounds, st.booleans())
    def test_event_advance_matches_unit_steps(
        self, decay, eps, rounds, quantize
    ):
        """``advance(gap)`` (event-driven skip, memoized fire times) vs
        ``gap`` unit steps plus per-item adds: identical lattices."""
        fast = WBMH(decay, eps, quantize=quantize)
        slow = WBMH(
            type(decay)(**_decay_params(decay)), eps, quantize=quantize
        )
        for gap, batch in rounds:
            fast.advance(gap)
            for _ in range(gap):
                slow.advance(1)
            fast.add_batch(batch)
            for value in batch:
                slow.add(value)
            assert wbmh_state(fast) == wbmh_state(slow)


def _decay_params(decay):
    if isinstance(decay, PolynomialDecay):
        return {"alpha": decay.alpha}
    assert isinstance(decay, ExponentialDecay)
    return {"lam": decay.lam}


def _rounds_to_items(rounds):
    """The rounds as a sorted trace plus the organic replay's final clock
    (rounds may end with item-free gaps that only ``until`` can express)."""
    items = []
    t = 0
    for gap, batch in rounds:
        t += gap
        for value in batch:
            items.append(StreamItem(t, value))
    return items, t


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs both kernel backends")
class TestCrossBackendIdentity:
    @settings(max_examples=150, deadline=None)
    @given(windows, epsilons, eh_rounds)
    def test_eh_ingest_and_organic_agree(self, window, eps, rounds):
        """numpy vs python kernels, both through the bulk ``ingest`` entry
        and organic advance/add replay: four bit-identical engines."""
        items, end = _rounds_to_items(rounds)
        states = []
        for backend in ("numpy", "python"):
            bulk = ExponentialHistogram(window, eps, kernel_backend=backend)
            bulk.ingest(items, until=end)
            organic = ExponentialHistogram(window, eps, kernel_backend=backend)
            for gap, batch in rounds:
                organic.advance(gap)
                organic.add_batch(batch)
            states.append(eh_state(bulk))
            states.append(eh_state(organic))
            for hist in (bulk, organic):
                for count in hist._cols.counts:
                    assert type(count) is int, backend
        # dict equality, not repr: the census Counter's *insertion order*
        # may differ between build paths while the state is identical.
        assert all(state == states[0] for state in states[1:]), states

    @settings(max_examples=100, deadline=None)
    @given(wbmh_decays, epsilons, wbmh_rounds, st.booleans())
    def test_wbmh_ingest_and_organic_agree(self, decay, eps, rounds, quantize):
        items, end = _rounds_to_items(rounds)
        states = []
        for backend in ("numpy", "python"):
            bulk = WBMH(
                type(decay)(**_decay_params(decay)),
                eps,
                quantize=quantize,
                kernel_backend=backend,
            )
            bulk.ingest(items, until=end)
            organic = WBMH(
                type(decay)(**_decay_params(decay)),
                eps,
                quantize=quantize,
                kernel_backend=backend,
            )
            for gap, batch in rounds:
                organic.advance(gap)
                organic.add_batch(batch)
            states.append(wbmh_state(bulk))
            states.append(wbmh_state(organic))
        assert all(state == states[0] for state in states[1:]), states

    @settings(max_examples=75, deadline=None)
    @given(epsilons, eh_rounds)
    def test_ceh_backends_agree(self, eps, rounds):
        items, end = _rounds_to_items(rounds)
        states = []
        for backend in ("numpy", "python"):
            engine = CascadedEH(
                PolynomialDecay(1.0), eps, kernel_backend=backend
            )
            engine.ingest(items, until=end)
            est = engine.query()
            states.append(
                (
                    engine.time,
                    engine.histogram.bucket_view(),
                    (est.value, est.lower, est.upper),
                )
            )
        assert states[0] == states[1]
