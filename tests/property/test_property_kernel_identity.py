"""Property: the optimized histogram kernels replicate unary replay.

The hot-path kernel pass (flattened EH carry propagation, the small-batch
unary cutover, the WBMH event-driven clock skip and memoized merge
scheduling) promises *bit-identity*, not approximate agreement: the
optimized engines must produce the same bucket lists -- starts, ends,
counts, levels -- as the pre-optimization unary replay, for every trace.
These properties pin that at the bucket level (stronger than the query
triplet used by ``test_property_batching``), and assert the EH bucket
bound ``O((1/eps) * log W)`` that the flattened cascade must preserve.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.histograms.ceh import CascadedEH
from repro.histograms.eh import ExponentialHistogram
from repro.histograms.wbmh import WBMH
from repro.streams.generators import StreamItem

epsilons = st.sampled_from([0.05, 0.1, 0.3])
windows = st.one_of(st.none(), st.integers(4, 400))

# Integer counts as floats (the EH contract); zeros exercise skip paths.
counts = st.integers(0, 40).map(float)

# A trace is a list of (advance-gap, batch-of-counts) rounds.
eh_rounds = st.lists(
    st.tuples(st.integers(0, 12), st.lists(counts, max_size=10)),
    max_size=25,
)

wbmh_decays = st.one_of(
    st.floats(0.5, 2.5).map(PolynomialDecay),
    st.floats(0.005, 0.5).map(ExponentialDecay),
)
wbmh_rounds = st.lists(
    st.tuples(
        st.integers(0, 200),
        st.lists(st.floats(0.0, 5.0), max_size=6),
    ),
    max_size=20,
)


def eh_state(hist: ExponentialHistogram):
    return (
        hist.time,
        [(b.start, b.end, b.count, b.level) for b in hist.bucket_view()],
        dict(hist._per_size),
    )


def wbmh_state(hist: WBMH):
    return (
        hist.time,
        [(b.start, b.end, b.count, b.level) for b in hist.bucket_view()],
    )


class TestEhKernelIdentity:
    @settings(max_examples=150, deadline=None)
    @given(windows, epsilons, eh_rounds)
    def test_batch_path_matches_unary_reference(self, window, eps, rounds):
        """``add_batch``/``add`` (flattened + cutover) vs the retained
        ``_add_ones_unary`` loop: identical buckets after every round."""
        fast = ExponentialHistogram(window, eps)
        unary = ExponentialHistogram(window, eps)
        for gap, batch in rounds:
            fast.advance(gap)
            unary.advance(gap)
            fast.add_batch(batch)
            for value in batch:
                unary._add_ones_unary(int(value))
            assert eh_state(fast) == eh_state(unary)

    @settings(max_examples=150, deadline=None)
    @given(windows, epsilons, eh_rounds)
    def test_bucket_count_bound(self, window, eps, rounds):
        """At most ``m + 1`` buckets per size and ``(m + 1) * O(log W)``
        overall, where ``W`` is the live item count (the paper's EH
        space bound, which the flattened cascade must not loosen)."""
        hist = ExponentialHistogram(window, eps)
        for gap, batch in rounds:
            hist.advance(gap)
            hist.add_batch(batch)
            per_size = hist._per_size
            for size, n in per_size.items():
                assert n <= hist.buckets_per_size + 1, (size, n)
            total = sum(size * n for size, n in per_size.items())
            if total:
                distinct_sizes = total.bit_length()  # log2(W) + 1 sizes
                bound = (hist.buckets_per_size + 1) * (distinct_sizes + 1)
                assert len(hist.bucket_view()) <= bound


class TestCehKernelIdentity:
    @settings(max_examples=100, deadline=None)
    @given(epsilons, eh_rounds)
    def test_ingest_matches_item_replay(self, eps, rounds):
        items = []
        t = 0
        for gap, batch in rounds:
            t += gap
            for value in batch:
                items.append(StreamItem(t, value))
        fast = CascadedEH(PolynomialDecay(1.0), eps)
        fast.ingest(items)
        replay = CascadedEH(PolynomialDecay(1.0), eps)
        for item in items:
            if item.time > replay.time:
                replay.advance(item.time - replay.time)
            replay.add(item.value)
        assert fast.time == replay.time
        assert fast.histogram.bucket_view() == replay.histogram.bucket_view()


class TestWbmhKernelIdentity:
    @settings(max_examples=100, deadline=None)
    @given(wbmh_decays, epsilons, wbmh_rounds, st.booleans())
    def test_event_advance_matches_unit_steps(
        self, decay, eps, rounds, quantize
    ):
        """``advance(gap)`` (event-driven skip, memoized fire times) vs
        ``gap`` unit steps plus per-item adds: identical lattices."""
        fast = WBMH(decay, eps, quantize=quantize)
        slow = WBMH(
            type(decay)(**_decay_params(decay)), eps, quantize=quantize
        )
        for gap, batch in rounds:
            fast.advance(gap)
            for _ in range(gap):
                slow.advance(1)
            fast.add_batch(batch)
            for value in batch:
                slow.add(value)
            assert wbmh_state(fast) == wbmh_state(slow)


def _decay_params(decay):
    if isinstance(decay, PolynomialDecay):
        return {"alpha": decay.alpha}
    assert isinstance(decay, ExponentialDecay)
    return {"lam": decay.lam}
