"""Property tests for the randomized counters.

Invariants that must hold for every stream shape and seed:

* MV/D unbiased counts: the window-count estimate is positive whenever the
  window holds items, zero exactly when it doesn't, and never explodes
  past the 3-sigma band around the truth too often.
* Geometric age registers: estimates are monotone in elapsed time on
  average, storage stays log-log, brackets are ordered.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import PolynomialDecay
from repro.histograms.matias import GeometricAgeRegister
from repro.sampling.unbiased_counts import UnbiasedWindowCount

gap_streams = st.lists(st.integers(0, 8), min_size=1, max_size=80)


class TestUnbiasedCountProperties:
    @settings(max_examples=50, deadline=None)
    @given(gap_streams, st.integers(0, 2**20), st.integers(2, 8))
    def test_zero_iff_empty_window(self, gaps, seed, k):
        uc = UnbiasedWindowCount(k=k, seed=seed)
        last_arrival = 0
        for g in gaps:
            uc.advance(g)
            uc.add()
            last_arrival = uc.time
        # A window reaching back to the last arrival is non-empty.
        w_nonempty = uc.time - last_arrival + 1
        assert uc.count_window(w_nonempty).value > 0
        # Advance past everything: window 1 is empty.
        uc.advance(5)
        assert uc.count_window(1).value == 0.0

    @settings(max_examples=50, deadline=None)
    @given(gap_streams, st.integers(0, 2**20))
    def test_estimate_bands_ordered(self, gaps, seed):
        uc = UnbiasedWindowCount(k=4, seed=seed)
        for g in gaps:
            uc.advance(g)
            uc.add()
        est = uc.count_window(uc.time + 1)
        assert 0 <= est.lower <= est.value <= est.upper

    @settings(max_examples=50, deadline=None)
    @given(gap_streams, st.integers(0, 2**20), st.floats(0.3, 2.5))
    def test_decayed_count_nonnegative_and_bounded(self, gaps, seed, alpha):
        decay = PolynomialDecay(alpha)
        uc = UnbiasedWindowCount(k=4, seed=seed)
        n = 0
        for g in gaps:
            uc.advance(g)
            uc.add()
            n += 1
        est = uc.decayed_count(decay)
        assert est.value >= 0.0
        # The decayed count of n unit items cannot exceed the estimate of
        # n by more than the estimator spread allows; sanity-cap at the
        # 3-sigma upper of the plain count.
        cap = uc.count_window(uc.time + 1).upper * decay.weight(0)
        assert est.value <= cap + 1e-9


class TestGeometricRegisterProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**20), st.floats(0.01, 0.4), st.integers(1, 2000))
    def test_bracket_ordered_and_storage_small(self, seed, delta, n):
        reg = GeometricAgeRegister(delta, random.Random(seed))
        reg.advance(n)
        lo, hi = reg.bracket()
        assert 0 <= lo <= reg.estimate() <= hi
        assert reg.storage_bits() <= 32

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**20), st.floats(0.02, 0.3))
    def test_estimate_never_decreases(self, seed, delta):
        reg = GeometricAgeRegister(delta, random.Random(seed))
        prev = reg.estimate()
        for _ in range(200):
            reg.advance(1)
            cur = reg.estimate()
            assert cur >= prev
            prev = cur
