"""Property: checkpoint round-trips are invisible, for *every* factory engine.

``engine -> dict -> json -> dict -> engine`` must preserve the clock and
the full ``query()`` triplet (value, lower, upper) bit-for-bit, both at
the snapshot instant and after continuing the stream on the original and
the restored copy in lock-step.  This closes the pre-PR-3 gap where only
WBMH/CEH round-trips were tested: the conformance engine matrix supplies
one spec per ``make_decaying_sum`` routing branch, now including the
section 3.4 polyexponential pipelines.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance.engines import default_specs
from repro.serialize import engine_from_dict, engine_to_dict

SPECS = default_specs()

SERIALIZABLE = sorted(
    name for name, spec in SPECS.items() if spec.serializable
)

# (gap, value) steps; integer values because the EH substrate models counts.
gap_value_streams = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 8)),
    min_size=0,
    max_size=60,
)


def _drive(engine, steps) -> None:
    for gap, value in steps:
        engine.advance(gap)
        if value:
            engine.add(float(value))


def _triplet(engine) -> tuple[float, float, float]:
    est = engine.query()
    return (est.value, est.lower, est.upper)


def test_every_factory_engine_is_serializable() -> None:
    # The whole matrix must round-trip -- a new routing branch that is not
    # checkpointable should fail loudly here, not in production restore.
    assert SERIALIZABLE == sorted(SPECS)


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(SERIALIZABLE),
    prefix=gap_value_streams,
    suffix=gap_value_streams,
)
def test_roundtrip_preserves_query_bit_for_bit(name, prefix, suffix) -> None:
    spec = SPECS[name]
    original = spec.build()
    _drive(original, prefix)
    restored = engine_from_dict(json.loads(json.dumps(engine_to_dict(original))))
    assert restored.time == original.time
    assert _triplet(restored) == _triplet(original)
    # Continue both in lock-step: the restored copy must shadow the
    # original exactly, including certified bounds.
    _drive(original, suffix)
    _drive(restored, suffix)
    assert restored.time == original.time
    assert _triplet(restored) == _triplet(original)
