"""Property-based tests: every factory engine satisfies DecayingSum.

The RK003 lint rule enforces the protocol *statically*; these properties
enforce it *dynamically*: whatever decay function ``make_decaying_sum``
is handed, the engine it returns must be a structural ``DecayingSum`` and
its clock must be monotone under any interleaving of ``add``/``advance``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    PolyexponentialDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.interfaces import DecayingSum, make_decaying_sum

decays = st.one_of(
    st.floats(0.01, 3.0).map(ExponentialDecay),
    st.integers(1, 200).map(SlidingWindowDecay),
    st.floats(0.5, 3.0).map(PolynomialDecay),
    st.integers(50, 500).map(LinearDecay),
    st.tuples(st.integers(1, 3), st.floats(0.05, 1.0)).map(
        lambda kl: PolyexponentialDecay(*kl)
    ),
    st.tuples(
        st.lists(st.floats(0.1, 4.0), min_size=1, max_size=3),
        st.floats(0.05, 1.0),
    ).map(lambda cl: PolyExpPolynomialDecay(*cl)),
)

# An op stream interleaves adds (value) and advances (steps). Values are
# integer counts: the sliding-window engine is a 0/1-or-count EH and
# rejects fractional items by contract.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 50).map(float)),
        st.tuples(st.just("advance"), st.integers(0, 25)),
    ),
    max_size=80,
)


class TestFactoryEnginesSatisfyProtocol:
    @settings(max_examples=80, deadline=None)
    @given(decays)
    def test_factory_engine_is_a_decaying_sum(self, decay):
        engine = make_decaying_sum(decay, 0.1)
        assert isinstance(engine, DecayingSum)

    @settings(max_examples=80, deadline=None)
    @given(decays, ops)
    def test_advance_never_decreases_time(self, decay, stream):
        engine = make_decaying_sum(decay, 0.1)
        assert engine.time == 0
        previous = engine.time
        for op, arg in stream:
            if op == "add":
                engine.add(arg)
            else:
                engine.advance(arg)
            assert engine.time >= previous
            previous = engine.time

    @settings(max_examples=40, deadline=None)
    @given(decays, ops)
    def test_protocol_surface_stays_usable(self, decay, stream):
        """query()/storage_report() keep working at any point in a stream."""
        engine = make_decaying_sum(decay, 0.1)
        for op, arg in stream:
            if op == "add":
                engine.add(arg)
            else:
                engine.advance(arg)
        est = engine.query()
        assert est.lower - 1e-9 <= est.value <= est.upper + 1e-9
        report = engine.storage_report()
        assert report.total_bits >= 0
