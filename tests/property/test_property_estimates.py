"""Property-based tests for Estimate arithmetic and quantized counters."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.estimate import Estimate
from repro.counters.approx_float import (
    FixedQuantizer,
    LevelQuantizer,
    truncate_mantissa,
)

finite = st.floats(0.0, 1e12, allow_nan=False, allow_infinity=False)


def estimates(draw_lower, width):
    return Estimate.from_bracket(draw_lower, draw_lower + width)


bracket_pairs = st.tuples(finite, st.floats(0.0, 1e6)).map(
    lambda t: Estimate.from_bracket(t[0], t[0] + t[1])
)


class TestEstimateAlgebra:
    @given(bracket_pairs, bracket_pairs)
    def test_addition_preserves_containment(self, a, b):
        c = a + b
        assert c.lower <= c.value <= c.upper
        assert c.lower == a.lower + b.lower
        assert c.upper == a.upper + b.upper

    @given(bracket_pairs, st.floats(0.0, 1e6))
    def test_scaling_preserves_ordering(self, e, factor):
        s = e.scaled(factor)
        assert s.lower <= s.value <= s.upper

    @given(bracket_pairs)
    def test_midpoint_inside(self, e):
        assert e.contains(e.value)

    @given(finite)
    def test_exact_contains_itself(self, x):
        assert Estimate.exact(x).contains(x)
        assert Estimate.exact(x).width_ratio() == 1.0


class TestTruncation:
    @given(st.floats(1e-300, 1e300), st.integers(1, 50))
    def test_truncation_bracket(self, x, bits):
        q = truncate_mantissa(x, bits)
        assert q <= x
        assert x <= q * (1.0 + 2.0 ** (1 - bits))

    @given(st.floats(1e-10, 1e10), st.integers(1, 50))
    def test_idempotent(self, x, bits):
        q = truncate_mantissa(x, bits)
        assert truncate_mantissa(q, bits) == q

    @given(st.floats(0.001, 1e9), st.integers(8, 40))
    def test_monotone_in_value(self, x, bits):
        q1 = truncate_mantissa(x, bits)
        q2 = truncate_mantissa(x * 1.5, bits)
        assert q2 >= q1


class TestQuantizerSchedules:
    @given(st.floats(0.01, 0.9), st.integers(1, 400))
    def test_level_quantizer_drift_below_exp_eps(self, eps, level):
        q = LevelQuantizer(eps)
        assert q.drift_factor(level) <= math.exp(eps) + 1e-9

    @given(st.floats(0.01, 0.9), st.integers(2, 1 << 30))
    def test_fixed_quantizer_drift_at_log_depth(self, eps, horizon):
        q = FixedQuantizer(eps, horizon)
        depth = max(1, int(math.log2(horizon)))
        # (1 + eps/log N)**log N <= e**eps.
        assert q.drift_factor(depth) <= math.exp(eps) + 1e-9

    @given(st.floats(0.01, 0.9), st.floats(0.001, 1e9), st.integers(1, 60))
    def test_quantize_respects_declared_beta(self, eps, x, level):
        for q in (LevelQuantizer(eps), FixedQuantizer(eps, 1 << 20)):
            got = q.quantize(x, level)
            assert got <= x
            assert x <= got * (1 + q.beta(level)) + 1e-300
