"""Property tests: the lateness buffer equals the in-order reference.

For any event set and any delivery order that respects the lateness bound,
the wrapped engine's state at the safe frontier must be identical to an
engine fed the events in perfect timestamp order.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import PolynomialDecay
from repro.core.exact import ExactDecayingSum
from repro.streams.lateness import LatenessBuffer

# Events as (time, value); times drawn small so collisions and dense
# neighbourhoods occur often.
events_strategy = st.lists(
    st.tuples(st.integers(0, 120), st.floats(0.1, 5.0)),
    min_size=1,
    max_size=80,
)


def bounded_shuffle(events, max_lateness, shuffle_keys):
    """Delivery order: sort by (time + bounded offset), a valid lateness-L
    delivery schedule."""
    keyed = [
        (t + (k % (max_lateness + 1)), i, t, v)
        for i, ((t, v), k) in enumerate(zip(events, shuffle_keys))
    ]
    keyed.sort()
    return [(t, v) for _, _, t, v in keyed]


@settings(max_examples=60, deadline=None)
@given(
    events_strategy,
    st.integers(0, 15),
    st.lists(st.integers(0, 1000), min_size=80, max_size=80),
)
def test_buffer_equals_in_order_reference(events, max_lateness, shuffle_keys):
    decay = PolynomialDecay(1.0)
    buf = LatenessBuffer(ExactDecayingSum(decay), max_lateness)
    delivered = bounded_shuffle(events, max_lateness, shuffle_keys)
    for when, value in delivered:
        accepted = buf.observe(when, value)
        assert accepted  # schedule respects the bound by construction

    frontier = buf.frontier
    reference = ExactDecayingSum(decay)
    for when, value in sorted(events):
        if when > frontier:
            continue
        if when > reference.time:
            reference.advance(when - reference.time)
        reference.add(value)
    if frontier > reference.time:
        reference.advance(frontier - reference.time)

    assert buf.too_late_count == 0
    assert buf.engine.time == frontier
    assert buf.query().value == pytest.approx(reference.query().value)


@settings(max_examples=40, deadline=None)
@given(events_strategy, st.integers(0, 10))
def test_watermark_advance_flushes_everything(events, max_lateness):
    decay = PolynomialDecay(1.0)
    buf = LatenessBuffer(ExactDecayingSum(decay), max_lateness)
    for when, value in sorted(events):
        buf.observe(when, value)
    horizon = max(t for t, _ in events) + max_lateness + 1
    buf.advance_watermark(horizon)
    assert buf.pending() == 0
    reference = ExactDecayingSum(decay)
    for when, value in sorted(events):
        if when > reference.time:
            reference.advance(when - reference.time)
        reference.add(value)
    reference.advance(buf.frontier - reference.time)
    assert buf.query().value == pytest.approx(reference.query().value)
