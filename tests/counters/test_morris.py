"""Unit tests for the Morris approximate counter."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.counters.morris import MorrisCounter


class TestAccuracy:
    def test_estimate_close_for_large_counts(self):
        m = MorrisCounter(accuracy=0.1, seed=7)
        n = 50_000
        m.add(n)
        est = m.query()
        assert est.relative_error_vs(n) < 0.4  # ~3 sigma at accuracy 0.1

    def test_average_over_counters_is_unbiased(self):
        n = 5000
        estimates = []
        for seed in range(30):
            m = MorrisCounter(accuracy=0.2, seed=seed)
            m.add(n)
            estimates.append(m.query().value)
        mean = sum(estimates) / len(estimates)
        assert abs(mean - n) / n < 0.15

    def test_zero_count(self):
        m = MorrisCounter(seed=1)
        assert m.query().value == 0.0

    def test_small_counts_exactish(self):
        # With small a, low counts increment (almost) deterministically.
        m = MorrisCounter(accuracy=0.05, seed=3)
        m.add(1)
        assert m.query().value > 0


class TestStorage:
    def test_register_is_loglog(self):
        m = MorrisCounter(accuracy=0.25, seed=11)
        m.add(100_000)
        # register ~ log_{1+a}(a n) ; storage ~ log2(register).
        assert m.register < 300
        assert m.storage_report().per_stream_bits <= 10

    def test_storage_grows_very_slowly(self):
        small = MorrisCounter(accuracy=0.25, seed=1)
        big = MorrisCounter(accuracy=0.25, seed=1)
        small.add(1000)
        big.add(100_000)
        rs = small.storage_report().per_stream_bits
        rb = big.storage_report().per_stream_bits
        assert rb - rs <= 2  # log log growth


class TestValidation:
    @pytest.mark.parametrize("acc", [0.0, 1.0, -0.1])
    def test_rejects_bad_accuracy(self, acc):
        with pytest.raises(InvalidParameterError):
            MorrisCounter(accuracy=acc)

    def test_rejects_negative_count(self):
        with pytest.raises(InvalidParameterError):
            MorrisCounter(seed=1).add(-1)

    def test_events_observed_tracks_truth(self):
        m = MorrisCounter(seed=1)
        m.add(10)
        m.add(5)
        assert m.events_observed == 15
