"""Unit tests for quantized float counters (paper section 5 rounding)."""

import math

import pytest

from repro.core.errors import InvalidParameterError
from repro.counters.approx_float import (
    FixedQuantizer,
    LevelQuantizer,
    truncate_mantissa,
)


class TestTruncateMantissa:
    def test_truncation_is_one_sided(self):
        for x in (1.0, 3.14159, 1e-9, 123456.789):
            q = truncate_mantissa(x, 8)
            assert q <= x
            assert x <= q * (1 + 2.0**-7)

    def test_zero_passthrough(self):
        assert truncate_mantissa(0.0, 4) == 0.0

    def test_high_bits_identity_for_small_ints(self):
        assert truncate_mantissa(5.0, 30) == 5.0

    def test_powers_of_two_exact_at_one_bit(self):
        assert truncate_mantissa(8.0, 1) == 8.0

    def test_rejects_negative_value_and_bits(self):
        with pytest.raises(InvalidParameterError):
            truncate_mantissa(-1.0, 4)
        with pytest.raises(InvalidParameterError):
            truncate_mantissa(1.0, 0)


class TestLevelQuantizer:
    def test_beta_schedule_decreasing(self):
        q = LevelQuantizer(0.1)
        betas = [q.beta(i) for i in range(1, 10)]
        assert all(a > b for a, b in zip(betas, betas[1:]))

    def test_total_drift_bounded_by_eps(self):
        # prod (1 + beta_i) <= e**(sum beta_i) <= e**eps for all depths.
        q = LevelQuantizer(0.1)
        assert q.drift_factor(200) <= math.exp(0.1) + 1e-12

    def test_mantissa_bits_grow_logarithmically(self):
        q = LevelQuantizer(0.1)
        assert q.mantissa_bits(100) - q.mantissa_bits(1) <= 2 * math.log2(100) + 2

    def test_quantize_respects_beta(self):
        q = LevelQuantizer(0.2)
        for level in (1, 3, 10):
            x = 1234.5678
            got = q.quantize(x, level)
            assert got <= x <= got * (1 + q.beta(level))

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidParameterError):
            LevelQuantizer(0.0)
        with pytest.raises(InvalidParameterError):
            LevelQuantizer(0.1).beta(0)


class TestFixedQuantizer:
    def test_uniform_beta(self):
        q = FixedQuantizer(0.1, horizon=1024)
        assert q.beta(1) == q.beta(7) == pytest.approx(0.01)

    def test_drift_within_eps_over_log_depth(self):
        eps = 0.1
        n = 1 << 20
        q = FixedQuantizer(eps, n)
        depth = int(math.log2(n))
        assert q.drift_factor(depth) <= 1 + eps + 0.01

    def test_mantissa_bits_formula(self):
        # log(1/beta) = log(1/eps) + log log N bits, plus the ceil slack.
        q = FixedQuantizer(0.125, horizon=1 << 16)
        assert q.mantissa_bits(1) == pytest.approx(
            1 + math.log2(16 / 0.125), abs=1
        )

    def test_quantize_one_sided(self):
        q = FixedQuantizer(0.2, horizon=256)
        x = 999.25
        got = q.quantize(x, 3)
        assert got <= x <= got * (1 + q.beta(3))

    def test_rejects_bad_horizon(self):
        with pytest.raises(InvalidParameterError):
            FixedQuantizer(0.1, horizon=1)
