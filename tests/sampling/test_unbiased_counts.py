"""Unit tests for the unbiased MV/D count estimator (§7.2, footnote 4)."""

import math
import random
import statistics

import pytest

from repro.core.decay import PolynomialDecay, SlidingWindowDecay
from repro.core.errors import InvalidParameterError
from repro.sampling.unbiased_counts import UnbiasedWindowCount


def fill(uc, n):
    for t in range(n):
        uc.add(t)
        uc.advance(1)
    return uc


class TestWindowCounts:
    def test_exactly_unbiased_window_count(self):
        # Mean of the estimator over many independent instances equals the
        # true count -- the defining property, within Monte-Carlo noise.
        n = 64
        estimates = []
        for seed in range(800):
            uc = fill(UnbiasedWindowCount(k=3, seed=seed), n)
            estimates.append(uc.count_window(n + 1).value)
        mean = statistics.fmean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(len(estimates))
        assert abs(mean - n) < 4 * sem + 0.5

    def test_more_lists_concentrate(self):
        n = 100
        spreads = {}
        for k in (3, 12):
            vals = [
                fill(UnbiasedWindowCount(k=k, seed=s), n).count_window(n + 1).value
                for s in range(150)
            ]
            spreads[k] = statistics.stdev(vals) / n
        assert spreads[12] < spreads[3]
        # Theory: rel std ~ 1/sqrt(k-2).
        assert spreads[12] < 2.0 / math.sqrt(10)

    def test_sub_window_counts(self):
        uc = fill(UnbiasedWindowCount(k=8, seed=5), 200)
        # Window 51 covers ages 0..50 -> items t=150..199 (ages 1..50).
        est = uc.count_window(51)
        assert 10 < est.value < 200

    def test_empty_window_zero(self):
        uc = UnbiasedWindowCount(k=2, seed=1)
        uc.add("x")
        uc.advance(10)
        uc.expire_older_than(5)
        assert uc.count_window(3).value == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            UnbiasedWindowCount(k=1)
        uc = UnbiasedWindowCount(k=2)
        with pytest.raises(InvalidParameterError):
            uc.count_window(0)


class TestDecayedCounts:
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(1.0), SlidingWindowDecay(40)],
        ids=lambda d: d.describe(),
    )
    def test_decayed_count_unbiased(self, decay):
        n = 80
        true = sum(decay.weight(n - t) for t in range(n))
        estimates = []
        for seed in range(400):
            uc = fill(UnbiasedWindowCount(k=4, seed=seed), n)
            estimates.append(uc.decayed_count(decay).value)
        mean = statistics.fmean(estimates)
        sem = statistics.stdev(estimates) / math.sqrt(len(estimates))
        assert abs(mean - true) < 4 * sem + 0.05 * true

    def test_empty_stream(self):
        uc = UnbiasedWindowCount(k=2, seed=0)
        assert uc.decayed_count(PolynomialDecay(1.0)).value == 0.0


class TestStorage:
    def test_logarithmic_entries(self):
        uc = fill(UnbiasedWindowCount(k=2, seed=7), 5000)
        assert sum(uc.list_sizes()) < 2 * 4 * math.log(5000)

    def test_storage_report(self):
        uc = fill(UnbiasedWindowCount(k=3, seed=8), 500)
        rep = uc.storage_report()
        assert rep.engine == "mvd-count[k=3]"
        assert rep.buckets == sum(uc.list_sizes())
        assert rep.per_stream_bits > 0
