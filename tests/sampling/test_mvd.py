"""Unit tests for MV/D lists (paper section 7.2)."""

import math
import random

import pytest

from repro.core.errors import InvalidParameterError
from repro.sampling.mvd import MVDList


def build(n_items, seed=0, one_per_tick=True):
    mvd = MVDList(seed=seed)
    for i in range(n_items):
        mvd.add(payload=i)
        if one_per_tick:
            mvd.advance(1)
    return mvd


class TestInvariants:
    def test_ranks_strictly_increasing(self):
        mvd = build(2000, seed=1)
        ranks = [e.rank for e in mvd.entries()]
        assert all(a < b for a, b in zip(ranks, ranks[1:]))

    def test_last_entry_is_most_recent_item(self):
        mvd = build(100, seed=2)
        assert mvd.entries()[-1].payload == 99

    def test_first_entry_holds_global_min_rank(self):
        # The oldest retained entry has the smallest rank ever drawn so
        # far among retained entries (suffix-minima property).
        mvd = build(500, seed=3)
        entries = mvd.entries()
        assert entries[0].rank == min(e.rank for e in entries)

    def test_expected_size_harmonic(self):
        sizes = [len(build(2000, seed=s)) for s in range(40)]
        mean = sum(sizes) / len(sizes)
        expected = math.log(2000)  # H_n ~ ln n
        assert expected * 0.5 < mean < expected * 1.8


class TestWindowSampling:
    def test_window_sample_is_min_rank_of_window(self):
        mvd = MVDList(seed=4)
        all_items = []
        for i in range(300):
            mvd.add(payload=i)
            # The just-added item is always the list tail; record its rank.
            all_items.append((i, mvd.entries()[-1].rank))
            mvd.advance(1)
        for w in (2, 10, 100, 300):
            cutoff = mvd.time - w
            window_items = [(i, r) for i, r in all_items if i > cutoff]
            best = min(window_items, key=lambda x: x[1])
            got = mvd.window_sample(w)
            assert got is not None
            assert got.payload == best[0]

    def test_window_sample_uniform(self):
        # Over independent lists, the window selection is uniform. After
        # the final advance the clock is 10 and items carry ages 1..10, so
        # window 11 covers all ten items.
        hits = [0] * 10
        trials = 4000
        for s in range(trials):
            mvd = build(10, seed=s)
            e = mvd.window_sample(11)
            hits[e.payload] += 1
        expected = trials / 10
        for h in hits:
            assert abs(h - expected) < 5 * math.sqrt(expected)

    def test_empty_window_returns_none(self):
        mvd = build(5, seed=5)
        mvd.advance(100)
        assert mvd.window_sample(10) is None

    def test_rejects_bad_window(self):
        with pytest.raises(InvalidParameterError):
            MVDList(seed=0).window_sample(0)


class TestExpiry:
    def test_expire_older_than(self):
        mvd = build(100, seed=6)
        mvd.expire_older_than(20)
        for e in mvd.entries():
            assert mvd.time - e.time <= 20

    def test_expire_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            MVDList(seed=0).expire_older_than(-1)

    def test_advance_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            MVDList(seed=0).advance(-1)

    def test_items_observed(self):
        mvd = build(50, seed=7)
        assert mvd.items_observed == 50
