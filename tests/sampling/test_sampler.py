"""Unit tests for time-decaying random selection (paper section 7.2)."""

import math

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.sampling.decayed_sampler import DecayedSampler, SamplerPool


def fill(sampler, n, payload_fn=lambda t: t):
    for t in range(n):
        sampler.add(payload_fn(t))
        sampler.advance(1)
    return sampler


class TestSelectionDistribution:
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(1.0), PolynomialDecay(2.0), ExponentialDecay(0.1)],
        ids=lambda d: d.describe(),
    )
    def test_mean_distribution_proportional_to_g(self, decay):
        # Average the per-instance exact selection distribution over many
        # independent rank draws; it must converge to g(age)/sum g.
        n, pools = 40, 300
        agg = {}
        for i in range(pools):
            s = fill(DecayedSampler(decay, seed=1000 + i), n)
            for t, p in s.selection_distribution().items():
                agg[t] = agg.get(t, 0.0) + p / pools
        z = sum(decay.weight(n - t) for t in range(n))
        for t in range(n):
            expected = decay.weight(n - t) / z
            got = agg.get(t, 0.0)
            assert abs(got - expected) < 6 * math.sqrt(expected / pools) + 0.01

    def test_single_instance_distribution_sums_to_one(self):
        s = fill(DecayedSampler(PolynomialDecay(1.0), seed=5), 30)
        dist = s.selection_distribution()
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_sample_returns_mvd_entries(self):
        s = fill(DecayedSampler(PolynomialDecay(1.0), seed=6), 20)
        for _ in range(20):
            e = s.sample()
            assert 0 <= e.payload < 20

    def test_sliding_window_only_samples_in_window(self):
        s = DecayedSampler(SlidingWindowDecay(10), seed=7)
        fill(s, 100)
        for _ in range(50):
            e = s.sample()
            assert s.time - e.time < 10


class TestEHCountsMode:
    def test_eh_mode_close_to_exact_mode(self):
        decay = PolynomialDecay(1.0)
        n, pools = 30, 250
        agg = {}
        for i in range(pools):
            s = fill(DecayedSampler(decay, counts="eh", epsilon=0.1, seed=i), n)
            for t, p in s.selection_distribution().items():
                agg[t] = agg.get(t, 0.0) + p / pools
        z = sum(decay.weight(n - t) for t in range(n))
        # Ages are coarsened to bucket ends, so compare cumulative mass of
        # the recent half against the exact value.
        got_recent = sum(p for t, p in agg.items() if n - t <= n // 2)
        exp_recent = sum(decay.weight(n - t) for t in range(n // 2, n)) / z
        assert abs(got_recent - exp_recent) < 0.1

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            DecayedSampler(PolynomialDecay(1.0), counts="magic")


class TestMVDCountsMode:
    def test_mean_distribution_close_to_g(self):
        # The footnote-4 configuration: unbiased MV/D window counts in the
        # mixture. Averaged over independent instances, selection
        # frequencies track g(age) closely.
        decay = PolynomialDecay(1.0)
        n, pools = 30, 250
        agg = {}
        for i in range(pools):
            s = DecayedSampler(decay, counts="mvd", mvd_lists=4, seed=29 + 17 * i)
            for t in range(n):
                s.add(t)
                s.advance(1)
            for t, p in s.selection_distribution().items():
                agg[t] = agg.get(t, 0.0) + p / pools
        z = sum(decay.weight(n - t) for t in range(n))
        dev = max(abs(agg.get(t, 0.0) - decay.weight(n - t) / z)
                  for t in range(n))
        assert dev < 0.06

    def test_storage_stays_sublinear(self):
        s = DecayedSampler(PolynomialDecay(1.0), counts="mvd", seed=3)
        for t in range(3000):
            s.add(t)
            s.advance(1)
        assert sum(s._mvd_counts.list_sizes()) < 150

    def test_bounded_support_expiry(self):
        s = DecayedSampler(SlidingWindowDecay(10), counts="mvd", seed=4)
        for t in range(200):
            s.add(t)
            s.advance(1)
        e = s.sample()
        assert s.time - e.time < 10


class TestLifecycle:
    def test_empty_sampler_raises(self):
        s = DecayedSampler(PolynomialDecay(1.0), seed=1)
        with pytest.raises(EmptyAggregateError):
            s.sample()

    def test_expired_window_raises(self):
        s = DecayedSampler(SlidingWindowDecay(5), seed=2)
        s.add("x")
        s.advance(100)
        with pytest.raises(EmptyAggregateError):
            s.sample()

    def test_mvd_stays_logarithmic(self):
        s = fill(DecayedSampler(PolynomialDecay(1.0), seed=3), 3000)
        assert s.mvd_size() < 60

    def test_sample_many(self):
        s = fill(DecayedSampler(PolynomialDecay(1.0), seed=4), 10)
        assert len(s.sample_many(5)) == 5
        with pytest.raises(InvalidParameterError):
            s.sample_many(-1)

    def test_exact_mode_expires_bounded_support(self):
        s = DecayedSampler(SlidingWindowDecay(8), seed=5)
        fill(s, 200)
        assert len(s._arrivals) <= 9


class TestSamplerPool:
    def test_pool_gives_independent_samples(self):
        decay = PolynomialDecay(1.0)
        pool = SamplerPool(decay, 200, seed=11)
        for t in range(25):
            pool.add(t)
            pool.advance(1)
        picks = [e.payload for e in pool.sample_each()]
        # Different members pick different items (correlated draws would
        # produce a single value).
        assert len(set(picks)) > 5

    def test_pool_validation(self):
        with pytest.raises(InvalidParameterError):
            SamplerPool(PolynomialDecay(1.0), 0)
