"""Unit tests for time-decaying quantiles (paper section 7.2)."""

import random

import pytest

from repro.core.decay import NoDecay, PolynomialDecay, SlidingWindowDecay
from repro.core.errors import InvalidParameterError
from repro.sampling.quantiles import DecayedQuantileEstimator


class TestMedian:
    def test_undecayed_median_of_uniform_values(self):
        est = DecayedQuantileEstimator(NoDecay(), repetitions=61, seed=1)
        rng = random.Random(2)
        values = []
        for _ in range(300):
            v = rng.uniform(0.0, 100.0)
            values.append(v)
            est.add(v)
            est.advance(1)
        values.sort()
        true_median = values[len(values) // 2]
        got = est.median()
        # Within the middle 20-quantile band with 61 repetitions.
        band = values[int(0.35 * len(values))], values[int(0.65 * len(values))]
        assert band[0] <= got <= band[1], (got, true_median)

    def test_decayed_median_tracks_recent_shift(self):
        # Values jump from ~10 to ~90; a decayed median must follow the
        # recent regime while the undecayed median stays in between.
        decayed = DecayedQuantileEstimator(
            PolynomialDecay(2.0), repetitions=41, seed=3
        )
        plain = DecayedQuantileEstimator(NoDecay(), repetitions=41, seed=4)
        rng = random.Random(5)
        for i in range(400):
            v = rng.uniform(5, 15) if i < 200 else rng.uniform(85, 95)
            decayed.add(v)
            plain.add(v)
            decayed.advance(1)
            plain.advance(1)
        assert decayed.median() > 80
        assert plain.median() < 80


class TestQuantiles:
    def test_quantile_ordering(self):
        est = DecayedQuantileEstimator(SlidingWindowDecay(100), repetitions=51, seed=6)
        rng = random.Random(7)
        for _ in range(150):
            est.add(rng.uniform(0, 1))
            est.advance(1)
        q25 = est.quantile(0.25)
        q75 = est.quantile(0.75)
        assert q25 <= est.quantile(0.5) + 0.2
        assert q25 < q75 + 0.2

    def test_extreme_quantiles(self):
        est = DecayedQuantileEstimator(NoDecay(), repetitions=21, seed=8)
        for v in range(50):
            est.add(float(v))
            est.advance(1)
        assert est.quantile(0.0) <= est.quantile(1.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DecayedQuantileEstimator(NoDecay(), repetitions=0)
        est = DecayedQuantileEstimator(NoDecay(), repetitions=3, seed=9)
        est.add(1.0)
        with pytest.raises(InvalidParameterError):
            est.quantile(1.5)
