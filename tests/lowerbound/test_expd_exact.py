"""Unit tests for the Lemma 3.1 storage experiments."""

import itertools
import math

import pytest

from repro.core.errors import InvalidParameterError
from repro.lowerbound.expd_exact import (
    approx_bits_required,
    count_distinct_exact_values,
    distinct_state_count,
    exact_bits_required,
    single_item_resolution,
)


class TestDistinctStates:
    def test_count_formula(self):
        # lam = 0.5 -> k = 2 -> 2**ceil(N/2) states.
        assert distinct_state_count(10, 0.5) == 2**5
        assert distinct_state_count(11, 0.5) == 2**6

    def test_enumerated_streams_all_distinct(self):
        # Every spaced binary stream yields a unique exact EXPD value.
        lam = 0.5
        k = math.ceil(1 / lam)
        n_slots = 10
        streams = itertools.product((0, 1), repeat=n_slots)
        assert count_distinct_exact_values(streams, lam, k) == 2**n_slots

    def test_exact_bits_linear_in_n(self):
        b1 = exact_bits_required(100, 1.0)
        b2 = exact_bits_required(200, 1.0)
        assert b2 == pytest.approx(2 * b1, abs=2)


class TestApproxBits:
    def test_resolution_counts_factor2_classes(self):
        # lam = ln(2): consecutive ages differ by exactly factor 2.
        lam = math.log(2.0)
        assert single_item_resolution(100, lam) == 101

    def test_approx_bits_logarithmic(self):
        b_small = approx_bits_required(1 << 10, 0.1)
        b_large = approx_bits_required(1 << 20, 0.1)
        assert b_large == pytest.approx(b_small + 10, abs=2)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            distinct_state_count(0, 1.0)
        with pytest.raises(InvalidParameterError):
            single_item_resolution(10, 0.0)
        with pytest.raises(InvalidParameterError):
            count_distinct_exact_values([], 1.0, 0)
