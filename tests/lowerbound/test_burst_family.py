"""Unit tests for the Theorem 2 experiment."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.lowerbound.burst_family import DistinguishabilityGame, verify_dominance
from repro.streams.adversarial import BurstFamily


class TestDominance:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 3.0])
    def test_every_slot_dominates_interference(self, alpha):
        bf = BurstFamily(alpha, n=1 << 24)
        ok, worst = verify_dominance(bf)
        assert ok, f"alpha={alpha}: worst interference ratio {worst}"
        assert worst < 0.25

    def test_paper_k10_fails_dominance_for_alpha2(self):
        # Documents the reproduction note: the paper's fixed k=10 does not
        # satisfy the 1/4 margin numerically (its suffix bound evaluates the
        # decay at an older age than the true one).
        bf = BurstFamily(2.0, n=1 << 20, k=10)
        if bf.r >= 2:
            ok, worst = verify_dominance(bf)
            assert not ok
            assert worst > 0.25

    def test_dominance_needs_slots(self):
        bf = BurstFamily(2.0, n=1 << 24)
        bf.slots = []
        with pytest.raises(InvalidParameterError):
            verify_dominance(bf)


class TestDistinguishabilityGame:
    def test_insufficient_memory_confuses_streams(self):
        bf = BurstFamily(2.0, n=1 << 24)
        assert bf.r >= 3
        game = DistinguishabilityGame(bf, memory_bits=bf.r - 2)
        pair = game.find_confusable_pair()
        assert pair is not None
        a, b, worst = pair
        assert a != b
        assert worst >= 1.25  # more than the (1 +- 1/4) tolerance apart

    def test_sufficient_memory_distinguishes_more(self):
        # With >= r bits the quantizing adversary separates strictly more
        # of the family than with 0 bits (states shrink).
        bf = BurstFamily(2.0, n=1 << 20)
        few = DistinguishabilityGame(bf, memory_bits=0)
        pair = few.find_confusable_pair()
        assert pair is not None  # everything collides in one state

    def test_rejects_negative_memory(self):
        bf = BurstFamily(2.0, n=1 << 20)
        with pytest.raises(InvalidParameterError):
            DistinguishabilityGame(bf, memory_bits=-1)

    def test_refuses_huge_enumeration(self):
        bf = BurstFamily(2.0, n=1 << 20)
        bf.slots = bf.slots * 10  # simulate r > 20
        game = DistinguishabilityGame(bf, memory_bits=1)
        if bf.r > 20:
            with pytest.raises(InvalidParameterError):
                game.find_confusable_pair()
