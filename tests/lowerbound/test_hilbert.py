"""Unit tests for the Lemma 3.2 Hilbert-recovery experiment."""

import random
from fractions import Fraction

import pytest

from repro.core.errors import InvalidParameterError
from repro.lowerbound.hilbert import (
    decayed_sums_exact,
    hilbert_matrix,
    recover_stream,
    roundtrip_ok,
)


class TestHilbertMatrix:
    def test_entries(self):
        m = hilbert_matrix(3)
        assert m[0][0] == Fraction(1, 1)
        assert m[1][2] == Fraction(1, 4)

    def test_nonsingular_small(self):
        # Determinant of the 3x3 shifted Hilbert matrix is nonzero.
        m = hilbert_matrix(3)
        det = (
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        )
        assert det != 0

    def test_rejects_bad_n(self):
        with pytest.raises(InvalidParameterError):
            hilbert_matrix(0)


class TestRecovery:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 12])
    def test_roundtrip_random_streams(self, n):
        rng = random.Random(n)
        stream = [rng.randint(0, 1) for _ in range(n)]
        assert roundtrip_ok(stream)

    def test_roundtrip_all_zero_and_all_one(self):
        assert roundtrip_ok([0, 0, 0, 0])
        assert roundtrip_ok([1, 1, 1, 1])

    def test_distinct_streams_distinct_sums(self):
        # The Omega(N) content: different streams -> different sum vectors.
        seen = {}
        for bits in range(16):
            stream = [(bits >> i) & 1 for i in range(4)]
            sums = tuple(decayed_sums_exact(stream))
            assert sums not in seen, f"collision: {stream} vs {seen.get(sums)}"
            seen[sums] = stream

    def test_recover_rejects_inexact_sums(self):
        sums = decayed_sums_exact([1, 0, 1])
        sums[0] += Fraction(1, 7)
        with pytest.raises(InvalidParameterError):
            recover_stream(sums)

    def test_empty_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            decayed_sums_exact([])
        with pytest.raises(InvalidParameterError):
            recover_stream([])
