"""Tier-1 regression-corpus replay: every checked-in trace, forever.

Two layers:

* pinned replay -- each entry that names a decay cell re-runs its recorded
  laws on exactly that cell (:func:`repro.conformance.corpus.replay_entry`);
* matrix sweep -- every corpus trace additionally runs through the whole
  engine matrix under the full law catalog, so a reproducer found on one
  engine keeps guarding all of them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.conformance.corpus import CorpusEntry, load_corpus, replay_entry
from repro.conformance.suite import ConformanceSuite

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded() -> None:
    assert len(ENTRIES) >= 10, "regression corpus must hold >= 10 traces"
    names = {entry.name for entry in ENTRIES}
    # The PR-1 factory-routing bug shapes must stay in the corpus.
    assert "polyexp-routing-pr1" in names
    assert "polyexppoly-routing-pr1" in names


def test_corpus_entries_are_wellformed() -> None:
    for entry in ENTRIES:
        assert entry.name, "entry needs a name"
        assert entry.notes, f"{entry.name}: entry needs a human note"
        # Round-trip through the JSON dict form is the identity.
        assert CorpusEntry.from_dict(entry.to_dict()) == entry


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_pinned_replay(entry: CorpusEntry) -> None:
    violations = replay_entry(entry)
    assert not violations, "\n".join(v.render() for v in violations)


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_matrix_sweep(entry: CorpusEntry) -> None:
    suite = ConformanceSuite(shrink_budget=200)
    cells, findings = suite.check_trace(entry.trace)
    assert cells > 0
    assert not findings, "\n".join(
        f.violation.render() for f in findings
    )
