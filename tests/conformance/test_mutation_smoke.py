"""Acceptance gate: the kit must catch injected estimator bugs.

Each registered mutation wraps a healthy factory engine with a known
defect; the suite must (a) detect every one of them within a small seed
budget and (b) shrink the failing trace to a reproducer of at most 10
items -- the ISSUE's acceptance bar for the shrinking machinery.
"""

from __future__ import annotations

import pytest

from repro.conformance.engines import default_specs
from repro.conformance.mutants import MUTATIONS, mutant_spec, mutant_specs
from repro.conformance.suite import ConformanceSuite

SPECS = default_specs()

#: Cells the smoke test injects bugs into: one EH, one WBMH, one register.
TARGETS = ("sliwin", "polyd-wbmh", "expd")


@pytest.mark.parametrize("mutation", sorted(MUTATIONS), ids=str)
def test_mutation_is_caught_and_shrunk(mutation: str) -> None:
    caught = False
    for target in TARGETS:
        spec = mutant_spec(SPECS[target], mutation)
        suite = ConformanceSuite({spec.name: spec}, shrink_budget=500)
        result = suite.run(6)
        if result.ok:
            continue
        caught = True
        smallest = min(f.shrunk.n_items for f in result.findings)
        assert smallest <= 10, (
            f"{mutation} on {target}: smallest reproducer has "
            f"{smallest} items"
        )
        # The shrunk trace must still fail: re-check it from scratch.
        finding = min(result.findings, key=lambda f: f.shrunk.n_items)
        _, refound = suite.check_trace(finding.shrunk)
        assert refound, "shrunk reproducer no longer fails"
    assert caught, f"mutation {mutation!r} escaped the suite"


def test_mutant_specs_cover_all_mutations() -> None:
    mutants = mutant_specs(SPECS["sliwin"])
    assert set(mutants) == set(MUTATIONS)
    for name, spec in mutants.items():
        assert name in spec.name
        assert not spec.serializable, "mutants must opt out of CL006"
