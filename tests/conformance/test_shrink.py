"""Unit tests of the greedy shrinker on synthetic predicates."""

from __future__ import annotations

from repro.conformance.shrink import shrink_trace
from repro.conformance.trace import Trace

BIG = Trace.build(
    [(t, 3) for t in range(0, 60, 2)], tail=40
)


class TestShrinking:
    def test_shrinks_to_single_item(self) -> None:
        # Failure: "any item present at all" -- minimum is one item.
        result = shrink_trace(BIG, lambda tr: tr.n_items >= 1)
        assert result.improved
        assert result.trace.n_items == 1
        assert result.trace.tail == 0
        # Times compressed to the origin, value pulled toward zero.
        assert result.trace.items[0][0] == 0
        assert result.trace.items[0][1] == 0.0

    def test_respects_item_count_constraint(self) -> None:
        result = shrink_trace(BIG, lambda tr: tr.n_items >= 7)
        assert result.trace.n_items == 7

    def test_respects_mass_constraint(self) -> None:
        result = shrink_trace(BIG, lambda tr: tr.total_value() >= 10)
        assert result.trace.total_value() >= 10
        # 3-valued items: 4 items x 3 = 12 is the reachable minimum
        # (value simplification can only move toward 0/1/half).
        assert result.trace.n_items <= 4

    def test_non_failing_input_is_returned_unimproved(self) -> None:
        result = shrink_trace(BIG, lambda tr: False)
        assert not result.improved
        assert result.trace == BIG
        assert result.evaluations == 1

    def test_deterministic(self) -> None:
        a = shrink_trace(BIG, lambda tr: tr.end_time >= 20)
        b = shrink_trace(BIG, lambda tr: tr.end_time >= 20)
        assert a.trace == b.trace
        assert a.evaluations == b.evaluations

    def test_budget_is_respected(self) -> None:
        calls = 0

        def fails(tr: Trace) -> bool:
            nonlocal calls
            calls += 1
            return tr.n_items >= 1

        result = shrink_trace(BIG, fails, max_evaluations=25)
        assert result.evaluations <= 25
        assert calls <= 25
        # Whatever came back must still fail.
        assert result.trace.n_items >= 1

    def test_result_still_fails_predicate(self) -> None:
        predicate = lambda tr: tr.n_items >= 2 and tr.tail >= 5  # noqa: E731
        result = shrink_trace(BIG, predicate)
        assert predicate(result.trace)
        assert result.trace.n_items == 2
        assert result.trace.tail == 5

    def test_describe_mentions_outcome(self) -> None:
        result = shrink_trace(BIG, lambda tr: tr.n_items >= 1)
        assert "shrunk" in result.describe()
