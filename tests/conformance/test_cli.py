"""End-to-end CLI tests: ``python -m repro.conformance`` as CI runs it."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.conformance.report import validate_report

REPO_ROOT = Path(__file__).parents[2]


def run_conformance(*args: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.conformance", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_run_exits_zero_and_writes_report(self, tmp_path) -> None:
        out = tmp_path / "CONFORMANCE.json"
        proc = run_conformance(
            "--seeds", "3", "--engines", "expd,sliwin", "--out", str(out)
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK: all laws hold" in proc.stdout
        report = json.loads(out.read_text())
        validate_report(report)
        assert report["engines"] == ["expd", "sliwin"]
        assert report["seeds"] == 3

    def test_law_filter(self) -> None:
        proc = run_conformance(
            "--seeds", "2", "--engines", "expd", "--laws", "CL001,CL002"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "laws=CL001,CL002" in proc.stdout

    def test_unknown_engine_is_a_usage_error(self) -> None:
        proc = run_conformance("--seeds", "1", "--engines", "warp-drive")
        assert proc.returncode == 2
        assert "warp-drive" in proc.stderr

    def test_bad_seed_count_is_a_usage_error(self) -> None:
        proc = run_conformance("--seeds", "0")
        assert proc.returncode == 2
