"""Conformance cells under both SoA kernel backends (numpy and python).

The backend seam (:func:`repro.histograms.soa.resolve_backend`) promises
that the numpy and pure-python kernel twins are *bit-identical*, not just
approximately equal.  This module drives the histogram cells of the
factory matrix -- eh (sliwin), ceh, and wbmh -- through the law catalog
explicitly pinned to each backend (CL001-CL006 plus the merge-split law
CL008), then pins the seam itself: both backends must produce identical
serialized state and query triplets on the same trace, and a snapshot
written by one backend must restore bit-identically under the other.
"""

from __future__ import annotations

import pytest

from repro.conformance.engines import make_spec
from repro.conformance.fuzz import trace_for_seed
from repro.conformance.laws import resolve_laws, run_laws
from repro.core.decay import (
    DecayFunction,
    GaussianDecay,
    LinearDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)
from repro.core.interfaces import make_decaying_sum
from repro.histograms.soa import HAVE_NUMPY
from repro.serialize import engine_from_dict, engine_to_dict
from repro.streams.generators import StreamItem

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)

#: CL007 (unsorted-rejection) probes input validation, which happens before
#: any kernel runs; CL009 (permutation) only applies to the forward engine.
LAWS = resolve_laws("CL001,CL002,CL003,CL004,CL005,CL006,CL008")

#: The histogram cells of the factory matrix: every decay family routed to
#: an engine with bucket kernels (eh, wbmh, ceh on both its substrates).
HISTOGRAM_CELLS: dict[str, DecayFunction] = {
    "sliwin": SlidingWindowDecay(64),
    "polyd-wbmh": PolynomialDecay(1.2),
    "logd-wbmh": LogarithmicDecay(),
    "linear-ceh": LinearDecay(96),
    "gauss-ceh": GaussianDecay(40.0),
    "table-ceh": TableDecay([1.0, 0.8, 0.6, 0.4, 0.2], tail=0.1),
}

SEEDS = (3, 11, 27)


def backend_spec(name: str, backend: str):
    decay = HISTOGRAM_CELLS[name]
    return make_spec(
        f"{name}[{backend}]",
        decay,
        factory=lambda: make_decaying_sum(decay, backend=backend),
    )


class TestLawsHoldUnderEachBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(HISTOGRAM_CELLS), ids=str)
    def test_cells_clean(self, name: str, backend: str) -> None:
        spec = backend_spec(name, backend)
        for seed in SEEDS:
            trace = trace_for_seed(seed)
            violations = run_laws(spec, trace, LAWS)
            assert not violations, "\n".join(
                v.render() for v in violations
            )


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs both kernel backends")
class TestBackendsAgreeBitForBit:
    @pytest.mark.parametrize("name", sorted(HISTOGRAM_CELLS), ids=str)
    def test_same_state_and_queries(self, name: str) -> None:
        """Same trace, both backends: identical snapshots and triplets.

        The serialized dict captures the full bucket state (starts, ends,
        counts, levels, clock), so dict equality is the strongest
        cross-backend statement the seam makes.
        """
        for seed in SEEDS:
            trace = trace_for_seed(seed)
            engines = {}
            for backend in BACKENDS:
                engine = make_decaying_sum(
                    HISTOGRAM_CELLS[name], backend=backend
                )
                engine.ingest(trace.stream_items(), until=trace.end_time)
                engines[backend] = engine
            py, np_ = engines["python"], engines["numpy"]
            est_py, est_np = py.query(), np_.query()
            assert (est_py.value, est_py.lower, est_py.upper) == (
                est_np.value,
                est_np.lower,
                est_np.upper,
            ), (name, seed)
            assert engine_to_dict(py) == engine_to_dict(np_), (name, seed)

    @pytest.mark.parametrize("name", sorted(HISTOGRAM_CELLS), ids=str)
    def test_snapshot_restores_across_backends(
        self, name: str, monkeypatch
    ) -> None:
        """A snapshot written by one backend restores bit-identically into
        the other and the two continuations stay in lock-step."""
        for seed in SEEDS:
            trace = trace_for_seed(seed)
            prefix = trace.stream_items()
            last = prefix[-1].time if prefix else 0
            suffix = [
                StreamItem(last + 2, 3.0),
                StreamItem(last + 2, 1.0),
                StreamItem(last + 7, 2.0),
            ]
            for writer, reader in (("numpy", "python"), ("python", "numpy")):
                origin = make_decaying_sum(
                    HISTOGRAM_CELLS[name], backend=writer
                )
                origin.ingest(prefix)
                snapshot = engine_to_dict(origin)
                monkeypatch.setenv("REPRO_KERNEL_BACKEND", reader)
                try:
                    restored = engine_from_dict(snapshot)
                finally:
                    monkeypatch.delenv("REPRO_KERNEL_BACKEND")
                assert restored.kernel_backend == reader
                assert engine_to_dict(restored) == snapshot, (
                    name,
                    seed,
                    writer,
                    reader,
                )
                origin.ingest(suffix)
                restored.ingest(suffix)
                est_o, est_r = origin.query(), restored.query()
                assert (est_o.value, est_o.lower, est_o.upper) == (
                    est_r.value,
                    est_r.lower,
                    est_r.upper,
                ), (name, seed, writer, reader)
                assert engine_to_dict(origin) == engine_to_dict(restored)
