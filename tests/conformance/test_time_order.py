"""Satellite: every engine's batch path honors the time-order contract.

Backward engines must raise :class:`~repro.core.errors.TimeOrderError`
on out-of-order timestamps (never silently mis-weight); engines whose
specs advertise ``order_insensitive`` (the forward-decay family) must
instead *accept* disordered traces bit-identically to the sorted replay
(conformance law CL007 as amended).  ``advance_to`` must refuse to move
the clock backwards on every engine, and genuinely late data has a
sanctioned route for the backward engines:
:class:`repro.streams.lateness.LatenessBuffer` re-orders bounded
lateness in front of any engine.
"""

from __future__ import annotations

import pytest

from repro.conformance.engines import default_specs
from repro.core.errors import TimeOrderError
from repro.streams.generators import StreamItem
from repro.streams.lateness import LatenessBuffer

SPECS = default_specs()

DISORDERED = [
    StreamItem(4, 1.0),
    StreamItem(9, 2.0),
    StreamItem(6, 1.0),  # out of order
]


@pytest.mark.parametrize("name", sorted(SPECS), ids=str)
class TestEveryEngineRejectsDisorder:
    def test_ingest_unsorted_raises_or_matches_sorted(self, name: str) -> None:
        spec = SPECS[name]
        engine = spec.build()
        if spec.order_insensitive:
            engine.ingest(DISORDERED)
            reference = spec.build()
            reference.ingest(sorted(DISORDERED, key=lambda i: i.time))
            assert engine.query().value == reference.query().value
        else:
            with pytest.raises(TimeOrderError):
                engine.ingest(DISORDERED)

    def test_ingest_before_clock_raises(self, name: str) -> None:
        spec = SPECS[name]
        engine = spec.build()
        engine.advance(10)
        if spec.order_insensitive:
            engine.ingest([StreamItem(4, 1.0)])
            assert engine.time == 10
        else:
            with pytest.raises(TimeOrderError):
                engine.ingest([StreamItem(4, 1.0)])

    def test_ingest_until_before_last_item_raises(self, name: str) -> None:
        engine = SPECS[name].build()
        with pytest.raises(TimeOrderError):
            engine.ingest([StreamItem(8, 1.0)], until=5)

    def test_advance_to_backwards_raises(self, name: str) -> None:
        engine = SPECS[name].build()
        engine.advance(7)
        with pytest.raises(TimeOrderError):
            engine.advance_to(3)

    def test_advance_to_current_time_is_noop(self, name: str) -> None:
        engine = SPECS[name].build()
        engine.advance(7)
        engine.advance_to(7)
        assert engine.time == 7


@pytest.mark.parametrize("name", sorted(SPECS), ids=str)
def test_lateness_buffer_is_the_sanctioned_route(name: str) -> None:
    """Disordered events through a LatenessBuffer match an in-order run."""
    events = [(3, 1.0), (1, 2.0), (5, 1.0), (2, 4.0), (8, 1.0)]
    buffered = LatenessBuffer(SPECS[name].build(), max_lateness=7)
    for when, value in events:
        assert buffered.observe(when, value)
    buffered.advance_watermark(20)  # frontier 13: everything is complete
    reference = SPECS[name].build()
    reference.ingest(
        [StreamItem(t, v) for t, v in sorted(events)],
        until=buffered.frontier,
    )
    est_b, est_r = buffered.query(), reference.query()
    assert (est_b.value, est_b.lower, est_b.upper) == (
        est_r.value,
        est_r.lower,
        est_r.upper,
    )
