"""Fuzz generator determinism + a clean small-seed suite run (tier-1)."""

from __future__ import annotations

import pytest

from repro.conformance.engines import default_specs, resolve_specs
from repro.conformance.fuzz import SHAPES, fuzz_traces, trace_for_seed
from repro.conformance.report import build_report, validate_report
from repro.conformance.suite import ConformanceSuite
from repro.core.errors import InvalidParameterError


class TestFuzzGenerator:
    def test_deterministic_per_seed(self) -> None:
        for seed in range(30):
            assert trace_for_seed(seed) == trace_for_seed(seed)

    def test_traces_are_valid_and_varied(self) -> None:
        sizes = set()
        for seed, trace in fuzz_traces(40):
            sizes.add(trace.n_items)
            # Construction re-validates: sorted, non-negative ints.
            assert trace.end_time >= 0
        assert len(sizes) > 5, "fuzzed traces should vary in size"

    def test_shape_pinning(self) -> None:
        for shape in SHAPES:
            trace_for_seed(3, shape=shape)  # must not raise
        with pytest.raises(InvalidParameterError):
            trace_for_seed(3, shape="nope")

    def test_edge_shape_covers_empty_trace(self) -> None:
        empties = [
            trace
            for seed in range(40)
            if (trace := trace_for_seed(seed, shape="edge")).n_items == 0
        ]
        assert empties, "edge shape must include the empty trace"


class TestSuiteRun:
    def test_small_fuzz_run_is_clean(self) -> None:
        suite = ConformanceSuite()
        result = suite.run(6)
        assert result.ok, "\n".join(
            f.violation.render() for f in result.findings
        )
        assert result.cases > 0
        assert result.engines == sorted(default_specs())
        assert "all laws hold" in result.describe()

    def test_engine_subset(self) -> None:
        suite = ConformanceSuite(resolve_specs("expd,sliwin"))
        result = suite.run(4)
        assert result.ok
        assert result.engines == ["expd", "sliwin"]

    def test_report_roundtrip(self) -> None:
        result = ConformanceSuite(resolve_specs("expd")).run(3)
        report = build_report(result)
        validate_report(report)
        assert report["ok"] is True
        assert report["findings"] == []

    def test_unknown_engine_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            resolve_specs("expd,warp-drive")
