"""Unit tests of the law catalog: applicability, detection, soundness."""

from __future__ import annotations

import pytest

from repro.conformance.engines import default_specs, make_spec
from repro.conformance.laws import (
    Violation,
    all_laws,
    get_law,
    resolve_laws,
    run_laws,
)
from repro.conformance.mutants import mutant_spec
from repro.conformance.trace import Trace
from repro.core.decay import SlidingWindowDecay
from repro.core.interfaces import make_decaying_sum

SPECS = default_specs()

SAMPLE = Trace.build([(0, 2), (3, 1), (3, 4), (9, 1)], tail=5)


class TestCatalog:
    def test_ids_are_unique_and_ordered(self) -> None:
        ids = [law.law_id for law in all_laws()]
        assert ids == sorted(set(ids))
        assert ids[0] == "CL001"

    def test_lookup_by_id_and_name(self) -> None:
        assert get_law("CL002") is get_law("batch-split")
        with pytest.raises(KeyError):
            get_law("CL999")

    def test_resolve_laws(self) -> None:
        assert resolve_laws("all") == all_laws()
        assert [law.law_id for law in resolve_laws("CL001,CL003")] == [
            "CL001",
            "CL003",
        ]


class TestApplicability:
    def test_time_shift_skips_wbmh(self) -> None:
        law = get_law("CL003")
        assert not law.applies(SPECS["polyd-wbmh"])
        assert law.applies(SPECS["sliwin"])
        assert law.applies(SPECS["expd"])

    def test_scale_linearity_only_register_engines(self) -> None:
        law = get_law("CL004")
        linear = {name for name, s in SPECS.items() if law.applies(s)}
        assert linear == {
            "expd",
            "polyexp",
            "polyexppoly",
            "fwd-exp",
            "fwd-poly",
        }

    def test_monotone_skips_nonmonotone_decay(self) -> None:
        law = get_law("CL005")
        # Polyexponential weight rises from g(0)=0 to a peak: not monotone.
        assert not law.applies(SPECS["polyexp"])
        assert law.applies(SPECS["sliwin"])
        assert law.applies(SPECS["polyd-wbmh"])


class TestLawsHoldOnHealthyEngines:
    @pytest.mark.parametrize("name", sorted(SPECS), ids=str)
    def test_sample_trace_clean(self, name: str) -> None:
        violations = run_laws(SPECS[name], SAMPLE)
        assert not violations, "\n".join(v.render() for v in violations)


class TestDetection:
    def test_biased_query_caught_by_oracle_law(self) -> None:
        spec = mutant_spec(SPECS["sliwin"], "biased-query")
        violations = get_law("CL001").check(spec, SAMPLE)
        assert violations
        assert violations[0].law_id == "CL001"
        assert violations[0].engine == spec.name

    def test_wide_bracket_caught_by_width_check(self) -> None:
        spec = mutant_spec(SPECS["expd"], "wide-bracket")
        violations = get_law("CL001").check(spec, SAMPLE)
        assert violations
        assert "width" in violations[0].message

    def test_dropped_batch_item_caught_by_batch_split(self) -> None:
        spec = mutant_spec(SPECS["sliwin"], "dropped-batch-item")
        violations = get_law("CL002").check(spec, SAMPLE)
        assert violations
        assert violations[0].law_id == "CL002"

    def test_crash_reported_as_violation_not_raised(self) -> None:
        # The PR-1 routing bug: polyexp decay inside CEH inverts the
        # bracket and query() raises -- CL001 must fold that into a
        # Violation instead of blowing up the suite. The trace is the
        # shrunk reproducer checked in as corpus entry
        # ``polyexp-routing-pr1``.
        from repro.core.decay import PolyexponentialDecay
        from repro.histograms.ceh import CascadedEH

        decay = PolyexponentialDecay(2, 0.1)
        spec = make_spec("misrouted", decay).with_factory(
            lambda: CascadedEH(decay, 0.1)
        )
        trace = Trace.build([(0, 1)] + [(1, 1)] * 11, tail=2)
        violations = get_law("CL001").check(spec, trace)
        assert violations
        assert "crash" in violations[0].message


class TestUnsortedRejection:
    def test_law_passes_on_engines_that_reject(self) -> None:
        law = get_law("CL007")
        for name in sorted(SPECS):
            assert not law.check(SPECS[name], SAMPLE), name

    def test_law_fires_on_engine_that_accepts_disorder(self) -> None:
        class _Tolerant:
            """Engine facade that silently sorts disordered input."""

            def __init__(self) -> None:
                self._inner = make_decaying_sum(SlidingWindowDecay(64), 0.1)

            def __getattr__(self, attr: str):
                return getattr(self._inner, attr)

            def ingest(self, items, *, until=None):
                ordered = sorted(items, key=lambda it: it.time)
                self._inner.ingest(ordered, until=until)

        spec = SPECS["sliwin"].with_factory(_Tolerant)
        violations = get_law("CL007").check(spec, SAMPLE)
        assert any("out-of-order" in v.message for v in violations)

    def test_vacuous_on_single_time_traces(self) -> None:
        law = get_law("CL007")
        single = Trace.build([(4, 1), (4, 2)], tail=2)
        # Only the advance_to half of the law can run; it must still pass.
        assert not law.check(SPECS["expd"], single)


class TestMergeSplit:
    def test_in_catalog_and_resolvable(self) -> None:
        law = get_law("CL008")
        assert law is get_law("merge-split")
        assert law in all_laws()

    def test_holds_across_matrix(self) -> None:
        law = get_law("CL008")
        for name in sorted(SPECS):
            violations = law.check(SPECS[name], SAMPLE)
            assert not violations, "\n".join(v.render() for v in violations)

    def test_detects_lossy_merge(self) -> None:
        class _LossyMerge:
            """Engine whose merge silently discards the other operand."""

            def __init__(self) -> None:
                self._inner = make_decaying_sum(SlidingWindowDecay(64), 0.1)

            def __getattr__(self, attr: str):
                return getattr(self._inner, attr)

            def merge(self, other) -> None:
                pass  # drops every item the other shard ingested

        spec = SPECS["sliwin"].with_factory(_LossyMerge)
        # Enough same-window mass that losing a shard breaks containment.
        trace = Trace.build([(t, 3) for t in range(30)], tail=0)
        violations = get_law("CL008").check(spec, trace)
        assert violations
        assert "misses the exact sum" in violations[0].message

    def test_exact_engine_must_be_bit_identical(self) -> None:
        from repro.core.decay import LinearDecay
        from repro.core.exact import ExactDecayingSum as _BaseExact

        decay = LinearDecay(200)

        class ExactDecayingSum(_BaseExact):
            """Merge-perturbing mutant; the name makes the derived
            ``engine_kind`` match the real exact engine, which is what
            routes CL008 onto its bit-identity tier."""

            def merge(self, other) -> None:
                super().merge(other)
                if self._values:
                    t, v = self._values[-1]
                    self._values[-1] = (t, v + 1e-9)

        spec = make_spec(
            "drifting", decay, factory=lambda: ExactDecayingSum(decay)
        )
        violations = get_law("CL008").check(spec, SAMPLE)
        assert violations
        assert "not bit-identical" in violations[0].message

    def test_not_applicable_merge_passes_vacuously(self) -> None:
        from repro.core.errors import NotApplicableError

        class _Unmergeable:
            def __init__(self) -> None:
                self._inner = make_decaying_sum(SlidingWindowDecay(64), 0.1)

            def __getattr__(self, attr: str):
                return getattr(self._inner, attr)

            def merge(self, other) -> None:
                raise NotApplicableError("randomized state")

        spec = SPECS["sliwin"].with_factory(_Unmergeable)
        assert not get_law("CL008").check(spec, SAMPLE)


class TestViolationRendering:
    def test_render_includes_law_engine_and_time(self) -> None:
        v = Violation("CL001", "sliwin", "bracket misses truth", time=7)
        text = v.render()
        assert "CL001" in text and "sliwin" in text and "t=7" in text
