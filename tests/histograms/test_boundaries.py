"""Unit tests for the WBMH region schedule (paper section 5)."""

import math

import pytest

from repro.core.decay import (
    ExponentialDecay,
    NoDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.histograms.boundaries import RegionSchedule


class TestPaperExample:
    def test_section5_boundaries(self):
        # Paper: g = 1/x**2, ratio 5 -> b_1=3, b_2=7, b_3=16 in age-from-1
        # convention, i.e. region starts 0, 2, 6, 15 in age-from-0.
        sched = RegionSchedule(PolynomialDecay(2.0), ratio=5.0)
        assert sched.region_of(0) == (0, 1)
        assert sched.region_of(2) == (2, 5)
        assert sched.region_of(6) == (6, 14)
        assert sched.region_of(15)[0] == 15

    def test_first_width(self):
        sched = RegionSchedule(PolynomialDecay(2.0), ratio=5.0)
        assert sched.first_width == 2


class TestRegionProperties:
    @pytest.mark.parametrize(
        "decay,ratio",
        [
            (PolynomialDecay(1.0), 1.1),
            (PolynomialDecay(3.0), 1.5),
            (ExponentialDecay(0.1), 1.2),
        ],
        ids=["polyd1", "polyd3", "expd"],
    )
    def test_weight_spread_within_ratio(self, decay, ratio):
        sched = RegionSchedule(decay, ratio)
        for age in range(0, 500, 7):
            s, e = sched.region_of(age)
            assert s <= age <= e
            assert decay.weight(s) <= ratio * decay.weight(min(e, 10**6)) + 1e-12

    def test_regions_are_contiguous(self):
        sched = RegionSchedule(PolynomialDecay(1.0), 1.3)
        prev_end = -1
        for start in sched.starts(1000):
            assert start == prev_end + 1
            prev_end = sched.region_of(start)[1]

    def test_region_count_tracks_log_weight_ratio(self):
        # #regions up to N ~ log_{ratio} D(g).
        decay = PolynomialDecay(2.0)
        ratio = 1.5
        sched = RegionSchedule(decay, ratio)
        n = 100_000
        sched.region_of(n)
        expected = math.log(decay.weight_ratio(n)) / math.log(ratio)
        assert sched.region_count() == pytest.approx(expected, rel=0.35)

    def test_expd_regions_have_constant_width(self):
        # EXPD's ratio g(a)/g(a+w) depends only on w: all regions equal.
        sched = RegionSchedule(ExponentialDecay(0.5), ratio=3.0)
        widths = set()
        prev = 0
        for start in sched.starts(100)[1:]:
            widths.add(start - prev)
            prev = start
        assert len(widths) == 1

    def test_polyd_regions_grow_geometrically(self):
        sched = RegionSchedule(PolynomialDecay(1.0), ratio=2.0)
        starts = sched.starts(10_000)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(b >= a for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] > 4 * gaps[0]


class TestEdgeCases:
    def test_no_decay_single_region(self):
        sched = RegionSchedule(NoDecay(), ratio=2.0)
        s, e = sched.region_of(10**6)
        assert s == 0

    def test_bounded_support_zero_tail_region(self):
        sched = RegionSchedule(SlidingWindowDecay(10), ratio=2.0)
        # Within the window all weights equal -> one region to support.
        assert sched.region_of(0) == (0, 9)
        s, _ = sched.region_of(50)
        assert s == 10  # the zero-weight tail region

    def test_same_region_check(self):
        sched = RegionSchedule(PolynomialDecay(2.0), ratio=5.0)
        assert sched.same_region(2, 5)
        assert not sched.same_region(1, 2)
        with pytest.raises(InvalidParameterError):
            sched.same_region(5, 2)

    def test_rejects_bad_ratio(self):
        with pytest.raises(InvalidParameterError):
            RegionSchedule(PolynomialDecay(1.0), ratio=1.0)

    def test_rejects_negative_age(self):
        sched = RegionSchedule(PolynomialDecay(1.0), ratio=2.0)
        with pytest.raises(InvalidParameterError):
            sched.region_of(-1)
