"""Unit tests for the Cascaded Exponential Histogram (Theorem 1)."""

import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    GaussianDecay,
    LinearDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.histograms.ceh import CascadedEH

ALL_DECAYS = [
    PolynomialDecay(0.5),
    PolynomialDecay(1.0),
    PolynomialDecay(2.0),
    ExponentialDecay(0.02),
    SlidingWindowDecay(100),
    LinearDecay(150),
    LogarithmicDecay(),
    GaussianDecay(120.0),
    TableDecay([1.0, 0.9, 0.5, 0.5, 0.2], tail=0.05),
]


class TestTheorem1AnyDecay:
    @pytest.mark.parametrize("decay", ALL_DECAYS, ids=lambda d: d.describe())
    def test_bracket_and_epsilon_for_any_decay(self, decay):
        epsilon = 0.1
        ceh = CascadedEH(decay, epsilon)
        exact = ExactDecayingSum(decay)
        rng = random.Random(17)
        for t in range(1500):
            if rng.random() < 0.5:
                ceh.add(1)
                exact.add(1)
            ceh.advance(1)
            exact.advance(1)
            if t % 71 == 0:
                true = exact.query().value
                if true > 1e-9:
                    est = ceh.query()
                    assert est.contains(true), decay.describe()
                    assert abs(est.value - true) / true <= epsilon + 1e-9

    def test_domination_backend_for_real_values(self):
        decay = PolynomialDecay(1.0)
        ceh = CascadedEH(decay, 0.1, backend="domination")
        exact = ExactDecayingSum(decay)
        rng = random.Random(19)
        for _ in range(1200):
            if rng.random() < 0.5:
                v = rng.uniform(0.2, 4.0)
                ceh.add(v)
                exact.add(v)
            ceh.advance(1)
            exact.advance(1)
        true = exact.query().value
        est = ceh.query()
        assert est.contains(true)
        assert abs(est.value - true) / true <= 0.1

    def test_eh_backend_rejects_real_values(self):
        ceh = CascadedEH(PolynomialDecay(1.0), 0.1, backend="eh")
        with pytest.raises(InvalidParameterError):
            ceh.add(0.5)


class TestEstimators:
    def test_upper_geq_lower(self):
        for mode in ("upper", "lower", "midpoint"):
            ceh = CascadedEH(PolynomialDecay(1.0), 0.2, estimator=mode)
            for _ in range(200):
                ceh.add(1)
                ceh.advance(1)
            est = ceh.query()
            assert est.lower <= est.value <= est.upper

    def test_upper_estimator_is_upper_bound(self):
        decay = PolynomialDecay(2.0)
        ceh = CascadedEH(decay, 0.2, estimator="upper")
        exact = ExactDecayingSum(decay)
        for _ in range(500):
            ceh.add(1)
            exact.add(1)
            ceh.advance(1)
            exact.advance(1)
        assert ceh.query().value >= exact.query().value - 1e-9

    def test_lower_estimator_is_lower_bound(self):
        decay = PolynomialDecay(2.0)
        ceh = CascadedEH(decay, 0.2, estimator="lower")
        exact = ExactDecayingSum(decay)
        for _ in range(500):
            ceh.add(1)
            exact.add(1)
            ceh.advance(1)
            exact.advance(1)
        assert ceh.query().value <= exact.query().value + 1e-9

    def test_rejects_unknown_estimator_and_backend(self):
        with pytest.raises(InvalidParameterError):
            CascadedEH(PolynomialDecay(1.0), 0.1, estimator="median")
        with pytest.raises(InvalidParameterError):
            CascadedEH(PolynomialDecay(1.0), 0.1, backend="magic")


class TestQueryDecay:
    def test_one_structure_serves_many_decays(self):
        # Theorem 1's payoff: the same EH answers any decay function.
        base = PolynomialDecay(1.0)  # infinite support -> unbounded EH
        ceh = CascadedEH(base, 0.05)
        exacts = {}
        others = [PolynomialDecay(2.0), ExponentialDecay(0.05), LinearDecay(80)]
        for g in others:
            exacts[g.describe()] = ExactDecayingSum(g)
        rng = random.Random(23)
        for _ in range(800):
            if rng.random() < 0.5:
                ceh.add(1)
                for e in exacts.values():
                    e.add(1)
            ceh.advance(1)
            for e in exacts.values():
                e.advance(1)
        for g in others:
            true = exacts[g.describe()].query().value
            est = ceh.query_decay(g)
            assert est.contains(true), g.describe()
            if true > 0:
                assert abs(est.value - true) / true <= 0.05 + 1e-9

    def test_rejects_decay_outliving_window(self):
        ceh = CascadedEH(SlidingWindowDecay(50), 0.1)
        with pytest.raises(InvalidParameterError):
            ceh.query_decay(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            ceh.query_decay(SlidingWindowDecay(51))


class TestBoundedSupport:
    def test_buckets_expire_past_support(self):
        decay = LinearDecay(40)  # support 39
        ceh = CascadedEH(decay, 0.2)
        for _ in range(500):
            ceh.add(1)
            ceh.advance(1)
        for b in ceh.histogram.bucket_view():
            assert ceh.time - b.end <= 40

    def test_storage_report_engine_label(self):
        ceh = CascadedEH(PolynomialDecay(1.0), 0.1)
        assert ceh.storage_report().engine == "ceh[eh]"
