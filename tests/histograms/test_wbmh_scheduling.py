"""Tests for the WBMH merge-scheduling strategies.

The event-driven scheduler must be behaviourally identical to the paper's
every-tick sweep: a pair's merge window is a pure function of the pair and
the region schedule, so firing at the exact window start reproduces the
sweep's decisions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import LogarithmicDecay, PolynomialDecay
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.histograms.wbmh import WBMH


def drive_pairwise(decay, stream, **kwargs):
    scan = WBMH(decay, merge_strategy="scan", **kwargs)
    sched = WBMH(decay, merge_strategy="scheduled", **kwargs)
    for gap, value in stream:
        scan.advance(gap)
        sched.advance(gap)
        if value:
            scan.add(value)
            sched.add(value)
    return scan, sched


class TestEquivalence:
    def test_paper_trace_identical(self):
        for strat in ("scan", "scheduled"):
            w = WBMH(PolynomialDecay(2.0), ratio=5.0, quantize=False,
                     merge_strategy=strat)
            states = []
            for _ in range(10):
                w.add(1)
                states.append(w.bucket_arrival_sets())
                w.advance(1)
            if strat == "scan":
                reference = states
            else:
                assert states == reference

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0])
    def test_random_streams_identical(self, alpha):
        rng = random.Random(int(alpha * 10))
        stream = [
            (rng.randint(0, 5), rng.uniform(0.0, 3.0)) for _ in range(500)
        ]
        scan, sched = drive_pairwise(PolynomialDecay(alpha), stream, epsilon=0.15)
        assert scan.bucket_arrival_sets() == sched.bucket_arrival_sets()
        assert scan.query().value == pytest.approx(sched.query().value)

    def test_log_decay_identical(self):
        rng = random.Random(9)
        stream = [(rng.randint(0, 3), 1.0) for _ in range(400)]
        scan, sched = drive_pairwise(LogarithmicDecay(), stream, epsilon=0.3)
        assert scan.bucket_arrival_sets() == sched.bucket_arrival_sets()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.floats(0.0, 10.0)),
            min_size=1,
            max_size=150,
        ),
        st.floats(0.3, 3.0),
    )
    def test_property_identical_lattices(self, stream, alpha):
        scan, sched = drive_pairwise(PolynomialDecay(alpha), stream, epsilon=0.25)
        assert scan.bucket_arrival_sets() == sched.bucket_arrival_sets()


class TestScheduledCorrectness:
    def test_accuracy_long_stream(self):
        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.1, merge_strategy="scheduled")
        exact = ExactDecayingSum(decay)
        for _ in range(30_000):
            w.add(1)
            exact.add(1)
            w.advance(1)
            exact.advance(1)
        est = w.query()
        true = exact.query().value
        assert est.contains(true)
        assert est.relative_error_vs(true) <= 0.1

    def test_heap_stays_bounded(self):
        w = WBMH(PolynomialDecay(1.0), 0.2, merge_strategy="scheduled")
        for _ in range(5000):
            w.add(1)
            w.advance(1)
        # Lazy deletion keeps some stale entries, but the heap must stay
        # within a small multiple of the live pair count.
        assert len(w._merge_heap) < 20 * w.bucket_count() + 50

    def test_rejects_unknown_strategy(self):
        with pytest.raises(InvalidParameterError):
            WBMH(PolynomialDecay(1.0), 0.1, merge_strategy="eager")

    def test_bounded_support_expiry(self):
        from repro.core.decay import TableDecay

        # Geometric table with a zero tail: the drop to zero weight at the
        # support edge makes it formally non-ratio-nonincreasing (like a
        # window), so strict mode is waived; expiry is what's under test.
        decay = TableDecay([1.0, 0.5, 0.25, 0.125, 0.0625])
        w = WBMH(decay, 0.2, merge_strategy="scheduled", strict=False)
        for _ in range(200):
            w.add(1)
            w.advance(1)
        for b in w.bucket_view():
            assert w.time - b.end <= 4
