"""Unit tests for the Exponential Histogram (paper section 4.1)."""

import math
import random

import pytest

from repro.core.decay import SlidingWindowDecay
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.histograms.eh import ExponentialHistogram, SlidingWindowSum


def run_stream(eh, exact, length, p, seed):
    rng = random.Random(seed)
    for _ in range(length):
        if rng.random() < p:
            eh.add(1)
            exact.add(1)
        eh.advance(1)
        exact.advance(1)


class TestCorrectness:
    @pytest.mark.parametrize("epsilon", [0.5, 0.2, 0.1, 0.05])
    def test_window_count_within_epsilon(self, epsilon):
        window = 200
        eh = ExponentialHistogram(window, epsilon)
        exact = ExactDecayingSum(SlidingWindowDecay(window))
        rng = random.Random(1)
        for t in range(3000):
            if rng.random() < 0.5:
                eh.add(1)
                exact.add(1)
            eh.advance(1)
            exact.advance(1)
            if t % 97 == 0:
                true = exact.query().value
                if true > 0:
                    est = eh.query()
                    assert est.contains(true)
                    assert abs(est.value - true) / true <= epsilon

    def test_exact_until_first_expiry(self):
        eh = ExponentialHistogram(1000, 0.3)
        exact = 0
        rng = random.Random(5)
        for _ in range(500):  # never exceeds the window
            if rng.random() < 0.7:
                eh.add(1)
                exact += 1
            eh.advance(1)
        est = eh.query()
        assert est.lower == est.upper == float(exact)

    def test_dense_stream_every_tick(self):
        eh = ExponentialHistogram(64, 0.1)
        for _ in range(1000):
            eh.add(1)
            eh.advance(1)
        est = eh.query()
        assert est.contains(64 - 1)  # ages 1..63 inside after last advance

    def test_multivalued_add_counts_units(self):
        eh = ExponentialHistogram(100, 0.5)
        eh.add(5)
        assert eh.total_in_buckets == 5

    def test_rejects_fractional_values(self):
        eh = ExponentialHistogram(10, 0.1)
        with pytest.raises(InvalidParameterError):
            eh.add(1.5)
        with pytest.raises(InvalidParameterError):
            eh.add(-1)


class TestInvariants:
    def test_bucket_sizes_are_powers_of_two(self):
        eh = ExponentialHistogram(500, 0.2)
        rng = random.Random(3)
        for _ in range(2000):
            if rng.random() < 0.8:
                eh.add(1)
            eh.advance(1)
        for b in eh.bucket_view():
            size = int(b.count)
            assert size & (size - 1) == 0

    def test_sizes_non_increasing_oldest_to_newest(self):
        eh = ExponentialHistogram(500, 0.2)
        rng = random.Random(4)
        for _ in range(2000):
            if rng.random() < 0.8:
                eh.add(1)
            eh.advance(1)
        sizes = [int(b.count) for b in eh.bucket_view()]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_per_size_bound(self):
        eh = ExponentialHistogram(500, 0.25)
        m = eh.buckets_per_size
        rng = random.Random(5)
        for _ in range(3000):
            if rng.random() < 0.9:
                eh.add(1)
            eh.advance(1)
            counts = {}
            for b in eh.bucket_view():
                counts[int(b.count)] = counts.get(int(b.count), 0) + 1
            assert all(c <= m + 1 for c in counts.values())

    def test_logarithmic_bucket_count(self):
        # O((1/eps) log N) buckets.
        eh = ExponentialHistogram(None, 0.2)
        for _ in range(4096):
            eh.add(1)
            eh.advance(1)
        bound = (eh.buckets_per_size + 1) * (math.log2(4096) + 2)
        assert eh.bucket_count() <= bound

    def test_expiry_drops_old_buckets(self):
        eh = ExponentialHistogram(16, 0.2)
        for _ in range(200):
            eh.add(1)
            eh.advance(1)
        for b in eh.bucket_view():
            assert eh.time - b.end < 16


class TestSubWindowQueries:
    def test_lemma_4_1_all_windows(self):
        # One EH answers every window w <= N within epsilon.
        window = 256
        epsilon = 0.1
        eh = ExponentialHistogram(window, epsilon)
        exact = ExactDecayingSum(SlidingWindowDecay(window))
        run_stream(eh, exact, 2000, 0.6, seed=7)
        # Reference per sub-window using a fresh exact engine per w.
        rng = random.Random(7)
        arrivals = []
        t = 0
        for _ in range(2000):
            if rng.random() < 0.6:
                arrivals.append(t)
            t += 1
        now = 2000
        for w in (1, 3, 10, 50, 128, 256):
            true = sum(1 for a in arrivals if now - a < w)
            est = eh.query_window(w)
            assert est.contains(true)
            if true > 0:
                assert abs(est.value - true) / true <= epsilon

    def test_query_window_rejects_oversized(self):
        eh = ExponentialHistogram(10, 0.1)
        with pytest.raises(InvalidParameterError):
            eh.query_window(11)
        with pytest.raises(InvalidParameterError):
            eh.query_window(0)

    def test_unbounded_mode_never_expires(self):
        eh = ExponentialHistogram(None, 0.2)
        for _ in range(100):
            eh.add(1)
            eh.advance(1)
        assert eh.total_in_buckets == 100
        assert eh.query().value == 100.0


class TestStorage:
    def test_storage_grows_like_log_squared(self):
        bits = []
        for n in (1 << 8, 1 << 11, 1 << 14):
            eh = ExponentialHistogram(None, 0.1)
            for _ in range(n):
                eh.add(1)
                eh.advance(1)
            bits.append(eh.storage_report().per_stream_bits)
        # log^2 growth: bits ratio ~ (14/8)^2 ~ 3; definitely sub-linear.
        assert bits[2] < bits[0] * (1 << 6) / 4
        assert bits[2] / bits[0] == pytest.approx((14 / 8) ** 2, rel=0.5)


class TestSlidingWindowSumAdapter:
    def test_adapter_matches_eh(self):
        s = SlidingWindowSum(64, 0.1)
        for _ in range(300):
            s.add(1)
            s.advance(1)
        assert s.decay.window == 64
        assert s.storage_report().engine == "sliwin-eh"
        assert s.query().contains(63)


def snapshot(eh):
    """Full structural state: bucket list, per-size census, running total."""
    return (
        [(b.start, b.end, b.count, b.level) for b in eh.bucket_view()],
        dict(eh._per_size),
        eh.total_in_buckets,
    )


class TestBulkInsert:
    """The O(v) -> O(m log v) `add` bugfix (binary-decomposition insert).

    `add(v)` must produce a structure *bit-identical* to the seed's unary
    loop (retained as `_add_ones_unary` exactly so these tests can
    differentially verify the rewrite), because the EH merge process is
    confluent: merges always consume the two oldest buckets of a size.
    """

    @pytest.mark.parametrize("epsilon", [0.5, 0.1, 0.04])
    def test_bulk_matches_unary_on_random_streams(self, epsilon):
        rng = random.Random(42)
        bulk = ExponentialHistogram(128, epsilon)
        unary = ExponentialHistogram(128, epsilon)
        for _ in range(400):
            v = rng.choice([0, 1, 2, 3, 7, 13, 64, 500])
            bulk.add(v)
            unary._add_ones_unary(v)
            assert snapshot(bulk) == snapshot(unary)
            steps = rng.randrange(3)
            bulk.advance(steps)
            unary.advance(steps)
            assert snapshot(bulk) == snapshot(unary)

    def test_large_value_single_add(self):
        eh = ExponentialHistogram(None, 0.1)
        eh.add(10**6)
        assert eh.total_in_buckets == 10**6
        # O(m log v) buckets, not O(v).
        assert eh.bucket_count() < 400
        unary = ExponentialHistogram(None, 0.1)
        unary._add_ones_unary(10**6)
        assert snapshot(eh) == snapshot(unary)

    def test_bulk_insert_work_is_logarithmic_in_value(self):
        """Proxy for the >=100x acceptance speedup without wall-clock in
        tier-1: the rewritten add must touch O(m log v) buckets where the
        unary loop performed v cascades."""
        eh = ExponentialHistogram(None, 0.01)
        eh.add(10**5)
        assert eh.bucket_count() <= eh.buckets_per_size * (10**5).bit_length() + 1

    def test_add_batch_loops_bulk_add(self):
        a = ExponentialHistogram(64, 0.1)
        b = ExponentialHistogram(64, 0.1)
        a.add_batch([1, 5, 0, 1000])
        for v in [1, 5, 0, 1000]:
            b.add(v)
        assert snapshot(a) == snapshot(b)

    def test_bulk_rejects_fractional_and_negative(self):
        eh = ExponentialHistogram(64, 0.1)
        with pytest.raises(InvalidParameterError):
            eh.add(2.5)
        with pytest.raises(InvalidParameterError):
            eh.add(-1)
        with pytest.raises(InvalidParameterError):
            eh.add_batch([1, -3])


class TestPerSizePruning:
    """Satellite fix: `_per_size` must not retain zero-count entries."""

    def test_no_zero_entries_after_cascades(self):
        eh = ExponentialHistogram(None, 0.3)
        for _ in range(500):
            eh.add(1)
        assert all(n > 0 for n in eh._per_size.values())

    def test_no_zero_entries_after_expiry(self):
        eh = ExponentialHistogram(32, 0.3)
        for _ in range(300):
            eh.add(1)
            eh.advance(1)
        eh.advance(64)  # expire everything
        assert eh.bucket_count() == 0
        assert all(n > 0 for n in eh._per_size.values())
        assert eh._per_size == {}

    def test_census_matches_buckets_exactly(self):
        rng = random.Random(9)
        eh = ExponentialHistogram(64, 0.1)
        for _ in range(400):
            eh.add(rng.choice([0, 1, 4]))
            eh.advance(rng.randrange(2))
            census = {}
            for bucket in eh.bucket_view():
                size = int(bucket.count)
                census[size] = census.get(size, 0) + 1
            assert dict(eh._per_size) == census
