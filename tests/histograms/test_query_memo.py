"""Differential tests of the EH/CEH query memo against the uncached walk.

``ExponentialHistogram.query`` and ``CascadedEH.query`` memoise their
bucket walk keyed on the backend's mutation generation; these tests pin
the cache's two obligations: a hit must be bit-identical to what an
uncached evaluation would produce (checked against a serialize-cloned
engine, whose cache starts empty), and every mutating entry point --
unary add, bulk add, batch add, advance, merge -- must invalidate it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.decay import LinearDecay, PolynomialDecay, SlidingWindowDecay
from repro.histograms.ceh import CascadedEH
from repro.histograms.eh import ExponentialHistogram, SlidingWindowSum
from repro.serialize import engine_from_dict, engine_to_dict


def _triplet(est):
    return est.value, est.lower, est.upper


def _fresh_answer(engine):
    """The uncached answer: a serialize clone starts with an empty memo."""
    return _triplet(engine_from_dict(engine_to_dict(engine)).query())


class TestEHMemo:
    def test_repeated_query_returns_cached_object(self) -> None:
        eh = ExponentialHistogram(64, 0.1)
        eh.add_batch([3.0, 1.0, 2.0])
        first = eh.query()
        assert eh.query() is first

    @pytest.mark.parametrize("window", [None, 48], ids=["infinite", "windowed"])
    def test_cached_answer_matches_uncached_walk(self, window) -> None:
        rng = random.Random(5)
        eh = ExponentialHistogram(window, 0.1)
        for _ in range(300):
            eh.add(float(rng.randint(1, 4)))
            if rng.random() < 0.4:
                eh.advance(rng.randint(1, 3))
            assert _triplet(eh.query()) == _fresh_answer(eh)
            # Second query is the cache hit; it must not drift either.
            assert _triplet(eh.query()) == _fresh_answer(eh)

    def test_every_mutator_invalidates(self) -> None:
        eh = ExponentialHistogram(32, 0.1)
        eh.add(2.0)
        mutations = [
            lambda: eh.add(1.0),
            lambda: eh.add(3.0),  # bulk path (count > 1 decomposition)
            lambda: eh.add_batch([1.0, 1.0, 2.0]),
            lambda: eh.advance(2),
        ]
        for mutate in mutations:
            stale = eh.query()
            mutate()
            fresh = eh.query()
            assert fresh is not stale
            assert _triplet(fresh) == _fresh_answer(eh)

    def test_zero_step_advance_keeps_cache(self) -> None:
        eh = ExponentialHistogram(32, 0.1)
        eh.add(2.0)
        cached = eh.query()
        eh.advance(0)
        assert eh.query() is cached

    def test_merge_invalidates(self) -> None:
        a = ExponentialHistogram(32, 0.1)
        b = ExponentialHistogram(32, 0.1)
        a.add_batch([1.0, 2.0])
        b.add_batch([4.0])
        stale = a.query()
        a.merge(b)
        fresh = a.query()
        assert fresh is not stale
        assert _triplet(fresh) == _fresh_answer(a)


class TestCEHMemo:
    @pytest.mark.parametrize(
        "backend", ["eh", "domination"], ids=["eh", "domination"]
    )
    def test_cached_answer_matches_uncached_walk(self, backend) -> None:
        rng = random.Random(9)
        ceh = CascadedEH(LinearDecay(80), 0.1, backend=backend)
        for _ in range(200):
            if backend == "eh":
                ceh.add(float(rng.randint(1, 3)))
            else:
                ceh.add(rng.uniform(0.1, 3.0))
            if rng.random() < 0.4:
                ceh.advance(rng.randint(1, 2))
            assert _triplet(ceh.query()) == _fresh_answer(ceh)

    def test_repeated_query_returns_cached_object(self) -> None:
        ceh = CascadedEH(PolynomialDecay(1.2), 0.1)
        ceh.add_batch([1.0, 2.0, 1.0])
        first = ceh.query()
        assert ceh.query() is first

    def test_backend_mutation_invalidates_adapter_cache(self) -> None:
        # Writes that bypass the adapter and hit the backend histogram
        # directly must still invalidate (the memo keys on the backend's
        # generation, not on adapter-level call counting).
        ceh = CascadedEH(LinearDecay(50), 0.1)
        ceh.add(2.0)
        stale = ceh.query()
        ceh.histogram.add(3.0)
        fresh = ceh.query()
        assert fresh is not stale
        assert _triplet(fresh) == _fresh_answer(ceh)

    def test_merge_invalidates(self) -> None:
        a = CascadedEH(LinearDecay(60), 0.1)
        b = CascadedEH(LinearDecay(60), 0.1)
        a.add_batch([1.0, 1.0])
        b.add(2.0)
        stale = a.query()
        a.merge(b)
        fresh = a.query()
        assert fresh is not stale
        assert _triplet(fresh) == _fresh_answer(a)


class TestSlidingWindowSumMemo:
    def test_wrapper_inherits_backend_memo(self) -> None:
        sw = SlidingWindowSum(48, 0.1)
        sw.add_batch([2.0, 1.0])
        first = sw.query()
        assert sw.query() is first
        sw.advance(3)
        assert sw.query() is not first
        assert _triplet(sw.query()) == _fresh_answer(sw)
