"""Unit tests for bucket records and merge arithmetic (paper section 2.3)."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.histograms.buckets import Bucket, merge_buckets


class TestBucket:
    def test_widths(self):
        b = Bucket(start=3, end=7, count=5.0)
        assert b.time_width == 4
        assert b.count == 5.0

    def test_age_span(self):
        b = Bucket(start=3, end=7, count=1.0)
        assert b.age_span(now=10) == (3, 7)

    def test_age_span_rejects_past_now(self):
        b = Bucket(start=3, end=7, count=1.0)
        with pytest.raises(InvalidParameterError):
            b.age_span(now=5)

    def test_rejects_inverted_interval(self):
        with pytest.raises(InvalidParameterError):
            Bucket(start=5, end=3, count=1.0)

    def test_rejects_negative_count_and_level(self):
        with pytest.raises(InvalidParameterError):
            Bucket(start=0, end=0, count=-1.0)
        with pytest.raises(InvalidParameterError):
            Bucket(start=0, end=0, count=1.0, level=-1)


class TestMerge:
    def test_merge_inherits_paper_rule(self):
        # "the new bucket inherits the start-time of the earlier bucket, the
        # end-time of the later bucket, and count-width which is the sum".
        older = Bucket(start=0, end=2, count=3.0)
        newer = Bucket(start=3, end=5, count=4.0)
        merged = merge_buckets(older, newer)
        assert (merged.start, merged.end, merged.count) == (0, 5, 7.0)

    def test_merge_increments_level(self):
        older = Bucket(0, 1, 1.0, level=2)
        newer = Bucket(2, 3, 1.0, level=1)
        assert merge_buckets(older, newer).level == 3

    def test_merge_rejects_out_of_order(self):
        with pytest.raises(InvalidParameterError):
            merge_buckets(Bucket(4, 5, 1.0), Bucket(0, 1, 1.0))

    def test_merge_rejects_overlap(self):
        with pytest.raises(InvalidParameterError):
            merge_buckets(Bucket(0, 3, 1.0), Bucket(3, 5, 1.0))
