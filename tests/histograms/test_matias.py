"""Unit tests for the approximate-boundary CEH (the Matias remark, §5)."""

import math
import random

import pytest

from repro.core.decay import PolynomialDecay, SlidingWindowDecay
from repro.core.errors import InvalidParameterError, NotApplicableError
from repro.core.exact import ExactDecayingSum
from repro.histograms.ceh import CascadedEH
from repro.histograms.matias import ApproxBoundaryCEH, GeometricAgeRegister


class TestGeometricAgeRegister:
    def test_unbiased_over_many_registers(self):
        n = 500
        delta = 0.05
        estimates = []
        for seed in range(200):
            reg = GeometricAgeRegister(delta, random.Random(seed))
            reg.advance(n)
            estimates.append(reg.estimate())
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(n, rel=0.05)

    def test_relative_spread_matches_theory(self):
        n = 2000
        delta = 0.02
        estimates = []
        for seed in range(300):
            reg = GeometricAgeRegister(delta, random.Random(seed))
            reg.advance(n)
            estimates.append(reg.estimate())
        mean = sum(estimates) / len(estimates)
        var = sum((x - mean) ** 2 for x in estimates) / len(estimates)
        rel_std = math.sqrt(var) / n
        assert rel_std < 2.0 * math.sqrt(delta / 2.0)

    def test_bracket_contains_truth_usually(self):
        n = 1000
        hits = 0
        for seed in range(100):
            reg = GeometricAgeRegister(0.05, random.Random(seed))
            reg.advance(n)
            lo, hi = reg.bracket()
            hits += lo <= n <= hi
        assert hits >= 95  # 3-sigma band

    def test_storage_is_loglog(self):
        reg = GeometricAgeRegister(0.01, random.Random(1))
        reg.advance(100_000)
        assert reg.storage_bits() <= 16  # index ~ ln(N)/delta ~ 1.2e3

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GeometricAgeRegister(0.0, random.Random(0))
        reg = GeometricAgeRegister(0.1, random.Random(0))
        with pytest.raises(InvalidParameterError):
            reg.advance(-1)


class TestApproxBoundaryCEH:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0])
    def test_accuracy_polyd(self, alpha):
        decay = PolynomialDecay(alpha)
        engine = ApproxBoundaryCEH(decay, 0.1, alpha_hint=alpha, seed=3)
        exact = ExactDecayingSum(decay)
        rng = random.Random(3)
        for _ in range(2500):
            if rng.random() < 0.5:
                engine.add(1)
                exact.add(1)
            engine.advance(1)
            exact.advance(1)
        true = exact.query().value
        est = engine.query()
        assert est.relative_error_vs(true) < 0.1
        assert est.contains(true)  # 3-sigma band (probabilistic)

    def test_beats_exact_boundary_storage(self):
        decay = PolynomialDecay(1.0)
        approx = ApproxBoundaryCEH(decay, 0.1, seed=1)
        exact_b = CascadedEH(decay, 0.1)
        for _ in range(4000):
            approx.add(1)
            exact_b.add(1)
            approx.advance(1)
            exact_b.advance(1)
        assert (
            approx.storage_report().per_stream_bits
            < exact_b.storage_report().per_stream_bits
        )

    def test_boundary_bits_grow_sublogarithmically(self):
        decay = PolynomialDecay(1.0)
        bits = []
        for n in (1000, 8000):
            engine = ApproxBoundaryCEH(decay, 0.2, seed=2)
            for _ in range(n):
                engine.add(1)
                engine.advance(1)
            rep = engine.storage_report()
            bits.append(rep.timestamp_bits / rep.buckets)
        # Per-boundary bits barely move over an 8x horizon change.
        assert bits[1] - bits[0] < 2.0

    def test_rejects_bounded_support(self):
        with pytest.raises(NotApplicableError):
            ApproxBoundaryCEH(SlidingWindowDecay(100), 0.1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ApproxBoundaryCEH(PolynomialDecay(1.0), 0.0)
        with pytest.raises(InvalidParameterError):
            ApproxBoundaryCEH(PolynomialDecay(1.0), 0.1, alpha_hint=0.0)
        engine = ApproxBoundaryCEH(PolynomialDecay(1.0), 0.1)
        with pytest.raises(InvalidParameterError):
            engine.add(1.5)

    def test_power_of_two_sizes_preserved(self):
        engine = ApproxBoundaryCEH(PolynomialDecay(1.0), 0.25, seed=4)
        rng = random.Random(4)
        for _ in range(1500):
            if rng.random() < 0.7:
                engine.add(1)
            engine.advance(1)
        for b in engine._buckets:
            assert b.size & (b.size - 1) == 0
