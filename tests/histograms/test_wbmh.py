"""Unit tests for the Weight-Based Merging Histogram (Lemma 5.1)."""

import math
import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError, NotApplicableError
from repro.core.exact import ExactDecayingSum
from repro.histograms.wbmh import WBMH


class TestApplicability:
    def test_accepts_polyd_expd_logd(self):
        for decay in (PolynomialDecay(1.0), ExponentialDecay(0.2), LogarithmicDecay()):
            WBMH(decay, 0.1)

    def test_rejects_sliwin_in_strict_mode(self):
        with pytest.raises(NotApplicableError):
            WBMH(SlidingWindowDecay(50), 0.1)

    def test_rejects_linear_in_strict_mode(self):
        with pytest.raises(NotApplicableError):
            WBMH(LinearDecay(50), 0.1)

    def test_non_strict_mode_accepts_anything(self):
        w = WBMH(LinearDecay(50), 0.1, strict=False)
        exact = ExactDecayingSum(LinearDecay(50))
        for _ in range(200):
            w.add(1)
            exact.add(1)
            w.advance(1)
            exact.advance(1)
        # Bracket validity survives; width may exceed epsilon.
        assert w.query().contains(exact.query().value)

    def test_rejects_bad_epsilon_and_ratio(self):
        with pytest.raises(InvalidParameterError):
            WBMH(PolynomialDecay(1.0), epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            WBMH(PolynomialDecay(1.0), ratio=1.0)


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [0.3, 0.1, 0.05])
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(0.5), PolynomialDecay(1.0), PolynomialDecay(2.5),
         LogarithmicDecay()],
        ids=lambda d: d.describe(),
    )
    def test_within_epsilon_bernoulli(self, decay, epsilon):
        w = WBMH(decay, epsilon)
        exact = ExactDecayingSum(decay)
        rng = random.Random(31)
        for t in range(2000):
            if rng.random() < 0.5:
                w.add(1)
                exact.add(1)
            w.advance(1)
            exact.advance(1)
            if t % 113 == 0:
                true = exact.query().value
                if true > 1e-9:
                    est = w.query()
                    assert est.contains(true), decay.describe()
                    assert abs(est.value - true) / true <= epsilon + 1e-9

    def test_real_valued_stream(self):
        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.1)
        exact = ExactDecayingSum(decay)
        rng = random.Random(37)
        for _ in range(1500):
            if rng.random() < 0.4:
                v = rng.uniform(0.1, 9.0)
                w.add(v)
                exact.add(v)
            w.advance(1)
            exact.advance(1)
        true = exact.query().value
        est = w.query()
        assert est.contains(true)
        assert abs(est.value - true) / true <= 0.1

    def test_quantization_stays_within_budget(self):
        decay = PolynomialDecay(1.0)
        quant = WBMH(decay, 0.1, quantize=True)
        exact_counts = WBMH(decay, 0.1, quantize=False)
        exact = ExactDecayingSum(decay)
        for _ in range(3000):
            for e in (quant, exact_counts, exact):
                e.add(1)
                e.advance(1)
        true = exact.query().value
        for engine in (quant, exact_counts):
            est = engine.query()
            assert est.contains(true)
            assert abs(est.value - true) / true <= 0.1

    def test_bursty_stream_with_gaps(self):
        decay = PolynomialDecay(2.0)
        w = WBMH(decay, 0.1)
        exact = ExactDecayingSum(decay)
        rng = random.Random(41)
        t = 0
        for _ in range(100):
            burst = rng.randint(1, 20)
            for _ in range(burst):
                w.add(1)
                exact.add(1)
            gap = rng.randint(1, 50)
            w.advance(gap)
            exact.advance(gap)
            t += gap
        true = exact.query().value
        est = w.query()
        assert est.contains(true)
        assert abs(est.value - true) / true <= 0.1


class TestStructure:
    def test_bucket_count_logarithmic_for_polyd(self):
        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.1)
        for _ in range(1 << 13):
            w.add(1)
            w.advance(1)
        # Buckets ~ 2 * #regions = O(log_{1+eps/2} N**alpha).
        regions = math.log(decay.weight_ratio(1 << 13)) / math.log(1.05)
        assert w.bucket_count() <= 2 * regions + 4

    def test_bucket_count_linear_for_expd(self):
        # Section 5: WBMH needs a linear number of buckets for EXPD.
        w = WBMH(ExponentialDecay(0.5), 0.5)
        for _ in range(400):
            w.add(1)
            w.advance(1)
        assert w.bucket_count() > 100

    def test_boundaries_are_stream_independent(self):
        # Two different streams produce identical bucket intervals.
        decay = PolynomialDecay(1.0)
        a = WBMH(decay, 0.2)
        b = WBMH(decay, 0.2)
        rng = random.Random(43)
        for _ in range(800):
            a.add(1)  # dense stream
            if rng.random() < 0.2:
                b.add(3)  # sparse stream, different values
            a.advance(1)
            b.advance(1)
        spans_a = [(bb.start, bb.end) for bb in a.bucket_view()]
        spans_b = [(bb.start, bb.end) for bb in b.bucket_view()]
        # The bucket lattice is identical regardless of stream content
        # (empty intervals are sealed as zero-count buckets).
        assert spans_a == spans_b

    def test_expiry_for_bounded_support_nonstrict(self):
        w = WBMH(LinearDecay(60), 0.2, strict=False)
        for _ in range(500):
            w.add(1)
            w.advance(1)
        for b in w.bucket_view():
            assert w.time - b.end <= 60


class TestStorage:
    def test_per_stream_bits_beat_ceh_for_polyd(self):
        # Lemma 5.1's gap: O(log N log log N) vs O(log^2 N). The win is
        # asymptotic -- per-bucket bits are log log N + log(1/eps) against
        # the CEH's log N -- so it shows once log N clearly exceeds
        # log(1/eps) + log log N; eps=0.3 and N=2**15 is past the
        # crossover (the storage-scaling benchmark maps the whole curve).
        from repro.histograms.ceh import CascadedEH

        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.3, horizon=1 << 15)
        c = CascadedEH(decay, 0.3)
        for _ in range(1 << 15):
            w.add(1)
            c.add(1)
            w.advance(1)
            c.advance(1)
        wb = w.storage_report().per_stream_bits
        cb = c.storage_report().per_stream_bits
        assert wb < cb

    def test_shared_bits_reported_separately(self):
        w = WBMH(PolynomialDecay(1.0), 0.1)
        for _ in range(100):
            w.add(1)
            w.advance(1)
        rep = w.storage_report()
        assert rep.shared_bits > 0
        assert rep.timestamp_bits == 0  # no per-stream boundaries


class TestEdgeCases:
    def test_empty_stream_queries_zero(self):
        w = WBMH(PolynomialDecay(1.0), 0.1)
        assert w.query().value == 0.0
        w.advance(100)
        assert w.query().value == 0.0

    def test_zero_value_noop(self):
        w = WBMH(PolynomialDecay(1.0), 0.1)
        w.add(0.0)
        assert w.bucket_count() == 0

    def test_rejects_negative(self):
        w = WBMH(PolynomialDecay(1.0), 0.1)
        with pytest.raises(InvalidParameterError):
            w.add(-1.0)
        with pytest.raises(InvalidParameterError):
            w.advance(-1)


class TestAddBatchSinglePass:
    def test_10k_batch_does_one_interval_check(self):
        """The fused ``add_batch`` loop touches the lattice interval exactly
        once per batch, however large -- the regression this pins is the
        old double iteration (one validation pass, one fold pass, each
        consulting the schedule)."""
        w = WBMH(PolynomialDecay(1.0), 0.1)
        calls = 0
        real = w._live_interval

        def counting():
            nonlocal calls
            calls += 1
            return real()

        w._live_interval = counting  # type: ignore[method-assign]
        w.add_batch([1.0] * 10_000)
        assert calls == 1
        assert w.bucket_count() == 1
        assert w.query().value == 10_000.0

    def test_batch_matches_sequential_adds(self):
        batched = WBMH(PolynomialDecay(1.0), 0.1)
        sequential = WBMH(PolynomialDecay(1.0), 0.1)
        values = [0.0, 1.5, 2.0, 0.0, 3.25]
        batched.add_batch(values)
        for v in values:
            sequential.add(v)
        assert batched.bucket_view() == sequential.bucket_view()
        assert batched._items == sequential._items

    def test_batch_rejects_negative_without_mutation(self):
        w = WBMH(PolynomialDecay(1.0), 0.1)
        w.add(2.0)
        before = w.bucket_view()
        with pytest.raises(InvalidParameterError):
            w.add_batch([1.0, -0.5])
        assert w.bucket_view() == before
