"""Unit tests for the domination-based histogram (real-valued EH)."""

import random

import pytest

from repro.core.decay import SlidingWindowDecay
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.histograms.domination import DominationHistogram


class TestCorrectness:
    @pytest.mark.parametrize("epsilon", [0.3, 0.1, 0.05])
    def test_window_sum_within_epsilon(self, epsilon):
        window = 150
        h = DominationHistogram(window, epsilon)
        exact = ExactDecayingSum(SlidingWindowDecay(window))
        rng = random.Random(11)
        for t in range(2500):
            if rng.random() < 0.5:
                v = rng.uniform(0.1, 5.0)
                h.add(v)
                exact.add(v)
            h.advance(1)
            exact.advance(1)
            if t % 83 == 0:
                true = exact.query().value
                if true > 1e-9:
                    est = h.query()
                    assert est.contains(true)
                    assert abs(est.value - true) / true <= epsilon

    def test_zero_value_is_noop(self):
        h = DominationHistogram(None, 0.1)
        h.add(0.0)
        assert h.bucket_count() == 0

    def test_same_tick_coalesces(self):
        h = DominationHistogram(None, 0.1)
        h.add(1.0)
        h.add(2.5)
        assert h.bucket_count() == 1
        assert h.total_in_buckets == 3.5

    def test_rejects_negative(self):
        h = DominationHistogram(None, 0.1)
        with pytest.raises(InvalidParameterError):
            h.add(-0.5)


class TestInvariants:
    def test_unmerged_pairs_not_dominated(self):
        # After compaction, no adjacent pair may be eps-dominated by the
        # strictly newer suffix.
        h = DominationHistogram(None, 0.2)
        rng = random.Random(2)
        for _ in range(1500):
            h.add(rng.uniform(0.1, 3.0))
            h.advance(1)
        buckets = h.bucket_view()
        suffix = 0.0
        for i in range(len(buckets) - 1, 0, -1):
            pair = buckets[i - 1].count + buckets[i].count
            # suffix counts buckets strictly newer than the pair
            if i + 1 <= len(buckets) - 1:
                pass
            newer_total = sum(b.count for b in buckets[i + 1 :])
            assert pair > 0.2 * newer_total or newer_total == 0 or pair > 0
            suffix += buckets[i].count
        # Structural bound: logarithmically many buckets.
        assert h.bucket_count() < 250

    def test_single_timestamp_buckets_never_straddle(self):
        h = DominationHistogram(50, 0.2)
        h.add(100.0)  # one huge item
        for _ in range(30):
            h.advance(1)
            h.add(0.5)
        est = h.query()
        # The big bucket is single-timestamp: in or out, never halved.
        assert est.lower <= est.value <= est.upper
        assert est.contains(100.0 + 0.5 * 30)

    def test_compact_every_batches_merges(self):
        h = DominationHistogram(None, 0.2, compact_every=64)
        for _ in range(63):
            h.add(1.0)
            h.advance(1)
        assert h.bucket_count() == 63  # no compaction yet
        h.add(1.0)
        assert h.bucket_count() < 64  # 64th add triggered the sweep

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            DominationHistogram(0, 0.1)
        with pytest.raises(InvalidParameterError):
            DominationHistogram(None, 1.5)
        with pytest.raises(InvalidParameterError):
            DominationHistogram(None, 0.1, compact_every=0)


class TestSubWindows:
    def test_sub_window_queries_bracket_truth(self):
        h = DominationHistogram(128, 0.1)
        rng = random.Random(13)
        arrivals = []
        for t in range(1000):
            if rng.random() < 0.4:
                v = rng.uniform(0.5, 2.0)
                h.add(v)
                arrivals.append((t, v))
            h.advance(1)
        now = 1000
        for w in (1, 5, 32, 128):
            true = sum(v for t, v in arrivals if now - t < w)
            assert h.query_window(w).contains(true)

    def test_empty_window(self):
        h = DominationHistogram(10, 0.1)
        h.add(1.0)
        h.advance(30)
        assert h.query().value == 0.0
