"""Fidelity test: the WBMH reproduces the paper's section 5 worked example.

The paper traces g(x) = 1/x**2 with (1 + eps) = 5 on an all-ones stream and
prints the bucket contents at T = 1, 2, 3, 4, 6, 8, 9, 10 (its clock starts
at 1; ours at 0, so paper time T corresponds to our time T - 1). The printed
weight groups translate to arrival-time intervals, newest first:

    paper T=1  -> ours T=0: [{0}]              printed (1)
    paper T=2  -> ours T=1: [{0,1}]            printed (1, 1/4)
    paper T=3  -> ours T=2: [{2},{0,1}]        printed (1); (1/4, 1/9)
    paper T=4  -> ours T=3: [{2,3},{0,1}]      printed (1, 1/4); (1/9, 1/16)
    paper T=6  -> ours T=5: [{4,5},{0..3}]     printed (1,1/4); (1/9..1/36)
    paper T=8  -> ours T=7: [{6,7},{4,5},{0..3}]
    paper T=9  -> ours T=8: [{8},{6,7},{4,5},{0..3}]
    paper T=10 -> ours T=9: [{8,9},{4..7},{0..3}]

This test drives the WBMH through the full trace and compares the bucket
interval structure at *every* step.
"""

import pytest

from repro.core.decay import PolynomialDecay
from repro.histograms.wbmh import WBMH

EXPECTED = {
    0: [(0, 1)],
    1: [(0, 1)],
    2: [(2, 3), (0, 1)],
    3: [(2, 3), (0, 1)],
    4: [(4, 5), (2, 3), (0, 1)],
    5: [(4, 5), (0, 3)],
    6: [(6, 7), (4, 5), (0, 3)],
    7: [(6, 7), (4, 5), (0, 3)],
    8: [(8, 9), (6, 7), (4, 5), (0, 3)],
    9: [(8, 9), (4, 7), (0, 3)],
}


def test_paper_trace_bucket_structure():
    w = WBMH(PolynomialDecay(2.0), ratio=5.0, quantize=False)
    assert w.seal_width == 2  # region 0 covers ages {0, 1}
    for t in range(10):
        w.add(1)
        assert w.bucket_arrival_sets() == EXPECTED[t], f"at our T={t}"
        w.advance(1)


def test_paper_trace_weights_printed_by_paper():
    # Spot-check the weight groups the paper prints at paper-T=10 (ours 9):
    # (1, 1/4); (1/9, 1/16, 1/25, 1/36); (1/49, 1/64, 1/81, 1/100).
    g = PolynomialDecay(2.0)
    w = WBMH(g, ratio=5.0, quantize=False)
    for _ in range(10):
        w.add(1)
        w.advance(1)
    w = WBMH(g, ratio=5.0, quantize=False)
    for t in range(10):
        w.add(1)
        if t < 9:
            w.advance(1)
    spans = w.bucket_arrival_sets()
    weight_groups = [
        [g.weight(9 - t) for t in range(end, start - 1, -1)]
        for start, end in spans
    ]
    assert weight_groups[0] == pytest.approx([1.0, 1 / 4])
    assert weight_groups[1] == pytest.approx([1 / 9, 1 / 16, 1 / 25, 1 / 36])
    assert weight_groups[2] == pytest.approx([1 / 49, 1 / 64, 1 / 81, 1 / 100])


def test_newest_bucket_alternates_width_one_and_two():
    # Paper: "the bucket of most recent items always alternates between
    # time-width 1 and time-width 2."
    w = WBMH(PolynomialDecay(2.0), ratio=5.0, quantize=False)
    widths = []
    for t in range(12):
        w.add(1)
        newest_start, newest_end = w.bucket_arrival_sets()[0]
        widths.append(t - newest_start + 1)
        w.advance(1)
    assert widths == [1, 2] * 6


def test_counts_match_interval_sizes_on_all_ones_stream():
    w = WBMH(PolynomialDecay(2.0), ratio=5.0, quantize=False)
    for _ in range(50):
        w.add(1)
        w.advance(1)
    for b in w.bucket_view():
        expected = min(b.end, 49) - b.start + 1
        assert b.count == pytest.approx(expected)
