"""Unit tests for synthetic stream generators."""

import pytest

from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.streams.generators import (
    StreamItem,
    bernoulli_stream,
    bursty_stream,
    constant_stream,
    drive,
    drive_many,
    lognormal_value_stream,
    periodic_stream,
    uniform_value_stream,
    zipf_value_stream,
)


class TestStreamItem:
    def test_rejects_negative_time_or_value(self):
        with pytest.raises(InvalidParameterError):
            StreamItem(-1, 1.0)
        with pytest.raises(InvalidParameterError):
            StreamItem(0, -1.0)


class TestGenerators:
    def test_bernoulli_reproducible(self):
        a = list(bernoulli_stream(500, 0.3, seed=9))
        b = list(bernoulli_stream(500, 0.3, seed=9))
        assert a == b

    def test_bernoulli_rate(self):
        items = list(bernoulli_stream(10_000, 0.3, seed=1))
        assert 0.25 < len(items) / 10_000 < 0.35

    def test_bernoulli_extremes(self):
        assert list(bernoulli_stream(100, 0.0, seed=1)) == []
        assert len(list(bernoulli_stream(100, 1.0, seed=1))) == 100

    def test_constant_stream(self):
        items = list(constant_stream(5, 2.0))
        assert [(i.time, i.value) for i in items] == [
            (0, 2.0), (1, 2.0), (2, 2.0), (3, 2.0), (4, 2.0)
        ]

    def test_periodic_stream(self):
        items = list(periodic_stream(10, 3))
        assert [i.time for i in items] == [0, 3, 6, 9]

    def test_bursty_stream_times_increasing(self):
        items = list(bursty_stream(2000, seed=5))
        times = [i.time for i in items]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert items  # bursts actually produce data

    def test_bursty_has_gaps(self):
        items = list(bursty_stream(5000, on_mean=10, off_mean=200, seed=2))
        times = [i.time for i in items]
        max_gap = max(b - a for a, b in zip(times, times[1:]))
        assert max_gap > 50

    def test_uniform_values_in_range(self):
        items = list(uniform_value_stream(500, low=1.0, high=2.0, seed=3))
        assert all(1.0 <= i.value <= 2.0 for i in items)

    def test_zipf_heavy_tail(self):
        items = list(zipf_value_stream(5000, s=1.5, seed=4))
        ones = sum(1 for i in items if i.value == 1.0)
        # P(rank 1) = 1/zeta(1.5, 1000) ~ 0.38: rank-1 dominates.
        assert ones > len(items) * 0.3

    def test_lognormal_positive(self):
        items = list(lognormal_value_stream(200, seed=6))
        assert all(i.value > 0 for i in items)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: bernoulli_stream(10, 1.5),
            lambda: periodic_stream(10, 0),
            lambda: zipf_value_stream(10, s=1.0),
            lambda: bursty_stream(10, on_mean=0),
        ],
    )
    def test_generators_validate(self, factory):
        with pytest.raises(InvalidParameterError):
            list(factory())


class TestDrive:
    def test_drive_advances_to_arrivals(self):
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        drive(engine, [StreamItem(3, 1.0), StreamItem(7, 2.0)], until=10)
        assert engine.time == 10
        g = PolynomialDecay(1.0)
        assert engine.query().value == pytest.approx(
            1.0 * g.weight(7) + 2.0 * g.weight(3)
        )

    def test_drive_rejects_time_regression(self):
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        engine.advance(5)
        with pytest.raises(InvalidParameterError):
            drive(engine, [StreamItem(3, 1.0)])

    def test_drive_many_lockstep(self):
        a = ExactDecayingSum(PolynomialDecay(1.0))
        b = ExactDecayingSum(PolynomialDecay(1.0))
        drive_many([a, b], bernoulli_stream(100, 0.5, seed=8), until=120)
        assert a.time == b.time == 120
        assert a.query().value == b.query().value
