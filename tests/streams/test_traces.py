"""Unit tests for the Figure 1 failure traces."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.streams.traces import (
    MINUTES_PER_HOUR,
    FailureEvent,
    LinkTrace,
    figure1_traces,
)


class TestFailureEvent:
    def test_end(self):
        assert FailureEvent(10, 5).end == 15

    def test_rejects_bad_fields(self):
        with pytest.raises(InvalidParameterError):
            FailureEvent(-1, 5)
        with pytest.raises(InvalidParameterError):
            FailureEvent(0, 0)


class TestLinkTrace:
    def test_items_one_per_down_minute(self):
        trace = LinkTrace("L", [FailureEvent(2, 3)])
        assert [(i.time, i.value) for i in trace.items()] == [
            (2, 1.0), (3, 1.0), (4, 1.0)
        ]

    def test_multiple_events_sorted(self):
        trace = LinkTrace("L", [FailureEvent(10, 2), FailureEvent(0, 2)])
        assert [i.time for i in trace.items()] == [0, 1, 10, 11]

    def test_overlapping_events_rejected(self):
        trace = LinkTrace("L", [FailureEvent(0, 5), FailureEvent(3, 2)])
        with pytest.raises(InvalidParameterError):
            trace.items()

    def test_total_down_minutes(self):
        trace = LinkTrace("L", [FailureEvent(0, 5), FailureEvent(10, 2)])
        assert trace.total_down_minutes() == 7


class TestFigure1:
    def test_paper_parameters(self):
        l1, l2 = figure1_traces()
        # L1: 5-hour failure starting at 0.
        assert l1.total_down_minutes() == 300
        assert l1.events[0].start == 0
        # L2: 30-minute failure 24h after L1's failure ends.
        assert l2.total_down_minutes() == 30
        assert l2.events[0].start == 300 + 24 * MINUTES_PER_HOUR

    def test_severity_ordering(self):
        # L1's event is 10x more severe; L2's is more recent.
        l1, l2 = figure1_traces()
        assert l1.total_down_minutes() == 10 * l2.total_down_minutes()
        assert l2.events[0].start > l1.events[0].end

    def test_custom_parameters(self):
        l1, l2 = figure1_traces(
            l1_duration_minutes=60, gap_hours=1, l2_duration_minutes=10
        )
        assert l1.total_down_minutes() == 60
        assert l2.events[0].start == 120
