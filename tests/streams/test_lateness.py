"""Unit tests for the bounded-lateness watermark buffer."""

import random

import pytest

from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.exact import ExactDecayingSum
from repro.streams.lateness import LatenessBuffer


def shuffled_trace(length, max_lateness, seed):
    """In-order trace plus a bounded shuffle: item t delivered within L."""
    rng = random.Random(seed)
    events = [(t, rng.uniform(0.5, 2.0)) for t in range(length)
              if rng.random() < 0.6]
    delivered = sorted(
        events, key=lambda e: e[0] + rng.randint(0, max_lateness) * 0.9
    )
    return events, delivered


class TestOrderingContract:
    def test_matches_in_order_reference_at_frontier(self):
        decay = PolynomialDecay(1.0)
        L = 8
        events, delivered = shuffled_trace(400, L, seed=3)
        buf = LatenessBuffer(ExactDecayingSum(decay), max_lateness=L)
        for when, value in delivered:
            assert buf.observe(when, value)
        frontier = buf.frontier
        reference = ExactDecayingSum(decay)
        for when, value in sorted(events):
            if when <= frontier:
                if when > reference.time:
                    reference.advance(when - reference.time)
                reference.add(value)
        if frontier > reference.time:
            reference.advance(frontier - reference.time)
        assert buf.query().value == pytest.approx(reference.query().value)
        assert buf.too_late_count == 0

    def test_engine_never_sees_regression(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 5)
        rng = random.Random(4)
        times = list(range(100))
        rng.shuffle(times)
        # Deliver in a random order but bounded by construction below.
        for when in sorted(times, key=lambda t: t + rng.randint(0, 5)):
            buf.observe(when, 1.0)
        assert buf.engine.time == buf.frontier

    def test_too_late_events_dropped_and_counted(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 2)
        buf.observe(100, 1.0)  # watermark 100, frontier 98
        assert not buf.observe(50, 1.0)
        assert buf.too_late_count == 1
        assert buf.observe(99, 1.0)  # within the bound


class TestWatermark:
    def test_frontier_lags_by_bound(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        buf.observe(25, 1.0)
        assert buf.watermark == 25
        assert buf.frontier == 15
        assert buf.pending() == 1  # the event itself sits past the frontier

    def test_explicit_watermark_flushes(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        buf.observe(25, 1.0)
        buf.advance_watermark(60)
        assert buf.pending() == 0
        assert buf.engine.time == 50

    def test_watermark_regression_rejected(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 1)
        buf.advance_watermark(10)
        with pytest.raises(TimeOrderError):
            buf.advance_watermark(5)

    def test_zero_lateness_is_strict_ordering(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 0)
        buf.observe(5, 1.0)
        assert buf.frontier == 5
        assert not buf.observe(4, 1.0)


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(InvalidParameterError):
            LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), -1)
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 1)
        with pytest.raises(InvalidParameterError):
            buf.observe(-1, 1.0)
        with pytest.raises(InvalidParameterError):
            buf.observe(1, -1.0)

    def test_mid_stream_engine_starts_at_its_clock(self):
        # The buffer policy wraps engines that have already run: the
        # watermark starts at the engine clock, so anything behind it at
        # wrap time is (correctly) too late.
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        engine.advance(3)
        buf = LatenessBuffer(engine, 1)
        assert buf.watermark == 3
        assert not buf.observe(2, 5.0)
        assert buf.too_late_count == 1
        assert buf.too_late_weight == 5.0
        assert buf.observe(4, 1.0)

    def test_storage_report_notes_buffer(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        buf.observe(25, 1.0)
        rep = buf.storage_report()
        assert rep.notes["lateness_buffer_entries"] == 1.0
        assert rep.notes["too_late_count"] == 0.0
        assert rep.notes["too_late_weight"] == 0.0

    def test_storage_report_carries_the_dropped_weight(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 2)
        buf.observe(100, 1.0)
        buf.observe(50, 2.5)  # too late
        rep = buf.storage_report()
        assert rep.notes["too_late_count"] == 1.0
        assert rep.notes["too_late_weight"] == 2.5


class TestDrain:
    def test_drain_flushes_the_window(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        buf.observe(25, 1.0)
        buf.observe(20, 2.0)
        assert buf.pending() == 2
        buf.drain()
        assert buf.pending() == 0
        # The engine clock sits at the newest accepted timestamp...
        assert buf.engine.time == 25
        # ...and the watermark did not move.
        assert buf.watermark == 25

    def test_drain_matches_sorted_replay(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        for when, value in ((7, 1.0), (3, 2.0), (9, 4.0), (5, 1.0)):
            buf.observe(when, value)
        buf.drain()
        reference = ExactDecayingSum(PolynomialDecay(1.0))
        for when, value in ((3, 2.0), (5, 1.0), (7, 1.0), (9, 4.0)):
            reference.advance(when - reference.time)
            reference.add(value)
        assert buf.query().value == reference.query().value

    def test_drain_on_empty_buffer_is_a_noop(self):
        buf = LatenessBuffer(ExactDecayingSum(PolynomialDecay(1.0)), 10)
        buf.drain()
        assert buf.engine.time == 0
