"""Unit tests for the lower-bound stream families."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.streams.adversarial import (
    BurstFamily,
    spaced_binary_streams,
    spaced_stream,
)


class TestSpacedStreams:
    def test_spaced_stream_times(self):
        items = spaced_stream([1, 0, 1, 1], k=5)
        assert [i.time for i in items] == [0, 10, 15]

    def test_family_size(self):
        members = list(spaced_binary_streams(4, k=3))
        assert len(members) == 16
        vectors = {bits for bits, _ in members}
        assert len(vectors) == 16

    def test_rejects_bad_bits(self):
        with pytest.raises(InvalidParameterError):
            spaced_stream([0, 2], k=1)
        with pytest.raises(InvalidParameterError):
            spaced_stream([1], k=0)


class TestBurstFamily:
    def test_slots_grow_with_log_n(self):
        rs = [BurstFamily(2.0, n=1 << bits).r for bits in (14, 24, 34)]
        assert rs[0] < rs[1] < rs[2]

    def test_stream_contents(self):
        bf = BurstFamily(2.0, n=1 << 14)
        vec = tuple([2] * bf.r)
        items = bf.stream(vec)
        assert len(items) == bf.r
        assert all(i.time < bf.origin for i in items)
        counts = sorted(i.value for i in items)
        assert counts == sorted(2 * s.base_count for s in bf.slots)

    def test_decayed_sum_matches_direct_evaluation(self):
        bf = BurstFamily(1.0, n=1 << 14)
        vec = tuple([1] * bf.r)
        t = bf.query_time(bf.slots[0])
        direct = sum(
            it.value / (t - it.time) ** 1.0 for it in bf.stream(vec)
        )
        assert bf.decayed_sum(vec, t) == pytest.approx(direct)

    def test_rejects_bad_vectors(self):
        bf = BurstFamily(2.0, n=1 << 14)
        with pytest.raises(InvalidParameterError):
            bf.stream([1] * (bf.r + 1))
        with pytest.raises(InvalidParameterError):
            bf.stream([3] * bf.r)

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            BurstFamily(0.0, n=1 << 14)
        with pytest.raises(InvalidParameterError):
            BurstFamily(1.0, n=4)
        with pytest.raises(InvalidParameterError):
            BurstFamily(1.0, n=1 << 14, k=2)

    def test_offsets_strictly_increasing(self):
        bf = BurstFamily(3.0, n=1 << 20)
        offsets = [s.offset for s in bf.slots]
        assert offsets == sorted(set(offsets))
