"""Unit tests for trace persistence and replay."""

import pytest

from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.exact import ExactDecayingSum
from repro.streams.generators import StreamItem, bernoulli_stream
from repro.streams.io import (
    KeyedItem,
    read_csv,
    read_jsonl,
    replay,
    write_csv,
    write_jsonl,
)


@pytest.fixture
def items():
    return [StreamItem(0, 1.0), StreamItem(3, 2.5), StreamItem(7, 0.5)]


@pytest.fixture
def keyed_items():
    return [KeyedItem("a", 0, 1.0), KeyedItem("b", 2, 3.0)]


class TestCsv:
    def test_roundtrip(self, tmp_path, items):
        path = tmp_path / "trace.csv"
        assert write_csv(items, path) == 3
        back = read_csv(path)
        assert [(i.time, i.value) for i in back] == [
            (i.time, i.value) for i in items
        ]

    def test_keyed_roundtrip(self, tmp_path, keyed_items):
        path = tmp_path / "trace.csv"
        write_csv(keyed_items, path)
        back = read_csv(path)
        assert back == keyed_items

    def test_sort_on_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv([StreamItem(5, 1.0), StreamItem(1, 2.0)], path)
        back = read_csv(path, sort=True)
        assert [i.time for i in back] == [1, 5]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InvalidParameterError):
            read_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,value\nxx,1\n")
        with pytest.raises(InvalidParameterError):
            read_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path) == []


class TestJsonl:
    def test_roundtrip(self, tmp_path, items):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(items, path) == 3
        back = read_jsonl(path)
        assert [(i.time, i.value) for i in back] == [
            (i.time, i.value) for i in items
        ]

    def test_keyed_roundtrip(self, tmp_path, keyed_items):
        path = tmp_path / "trace.jsonl"
        write_jsonl(keyed_items, path)
        assert read_jsonl(path) == keyed_items

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"time": 1, "value": 2.0}\n\n{"time": 2, "value": 1.0}\n')
        assert len(read_jsonl(path)) == 2

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"value": 2.0}\n')
        with pytest.raises(InvalidParameterError):
            read_jsonl(path)


class TestReplay:
    def test_replay_equals_manual_drive(self, tmp_path):
        decay = PolynomialDecay(1.0)
        items = list(bernoulli_stream(200, 0.5, seed=3))
        path = tmp_path / "t.jsonl"
        write_jsonl(items, path)
        replayed = replay(read_jsonl(path), ExactDecayingSum(decay), until=250)
        manual = ExactDecayingSum(decay)
        for item in items:
            if item.time > manual.time:
                manual.advance(item.time - manual.time)
            manual.add(item.value)
        manual.advance(250 - manual.time)
        assert replayed.query().value == pytest.approx(manual.query().value)

    def test_replay_rejects_unsorted(self):
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        with pytest.raises(TimeOrderError):
            replay([StreamItem(5, 1.0), StreamItem(2, 1.0)], engine)
