"""Cross-checks: NumPy kernels vs the exact engine (two ground truths)."""

import numpy as np
import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum
from repro.vectorized import (
    decayed_sum_dense,
    decayed_sum_trajectory,
    ewma_scan,
    trace_to_dense,
    window_sum_scan,
)


def exact_reference(values, decay):
    engine = ExactDecayingSum(decay)
    for i, v in enumerate(values):
        if v:
            engine.add(float(v))
        if i < len(values) - 1:
            engine.advance(1)
    return engine


@pytest.fixture
def values():
    rng = np.random.default_rng(3)
    arr = rng.uniform(0.0, 2.0, size=300)
    arr[rng.random(300) < 0.4] = 0.0
    return arr


class TestDenseSum:
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(1.0), ExponentialDecay(0.03), SlidingWindowDecay(50),
         LinearDecay(120)],
        ids=lambda d: d.describe(),
    )
    def test_matches_exact_engine(self, values, decay):
        engine = exact_reference(values, decay)
        assert decayed_sum_dense(values, decay) == pytest.approx(
            engine.query().value, rel=1e-9
        )

    def test_extra_age(self, values):
        decay = PolynomialDecay(1.0)
        engine = exact_reference(values, decay)
        engine.advance(17)
        assert decayed_sum_dense(values, decay, extra_age=17) == pytest.approx(
            engine.query().value, rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            decayed_sum_dense([], PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            decayed_sum_dense([1.0, -1.0], PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            decayed_sum_dense([1.0], PolynomialDecay(1.0), extra_age=-1)


class TestTrajectories:
    def test_trajectory_last_equals_dense(self, values):
        decay = PolynomialDecay(2.0)
        traj = decayed_sum_trajectory(values, decay)
        assert traj[-1] == pytest.approx(decayed_sum_dense(values, decay))

    def test_trajectory_prefix_consistency(self, values):
        decay = LinearDecay(40)
        traj = decayed_sum_trajectory(values, decay)
        for cut in (1, 7, 100):
            assert traj[cut - 1] == pytest.approx(
                decayed_sum_dense(values[:cut], decay), rel=1e-9
            )

    def test_expd_trajectory_uses_scan(self, values):
        decay = ExponentialDecay(0.05)
        traj = decayed_sum_trajectory(values, decay)
        ref = ewma_scan(values, 0.05)
        np.testing.assert_allclose(traj, ref)


class TestEwmaScan:
    def test_matches_recurrence(self, values):
        lam = 0.07
        out = ewma_scan(values, lam)
        s = 0.0
        for i, v in enumerate(values):
            s = s * np.exp(-lam) if i else 0.0
            s += v
            assert out[i] == pytest.approx(s, rel=1e-9)

    def test_stable_for_large_lambda_times_n(self):
        # lam * n = 50_000 -- the naive scaled prefix sum would overflow.
        values = np.ones(10_000)
        out = ewma_scan(values, lam=5.0)
        assert np.all(np.isfinite(out))
        limit = 1.0 / (1.0 - np.exp(-5.0))
        assert out[-1] == pytest.approx(limit, rel=1e-6)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ewma_scan([1.0], 0.0)


class TestWindowScan:
    def test_matches_engine(self, values):
        window = 32
        out = window_sum_scan(values, window)
        engine = exact_reference(values, SlidingWindowDecay(window))
        assert out[-1] == pytest.approx(engine.query().value)

    def test_small_prefixes(self):
        out = window_sum_scan([1.0, 2.0, 3.0], 2)
        np.testing.assert_allclose(out, [1.0, 3.0, 5.0])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            window_sum_scan([1.0], 0)


class TestTraceToDense:
    def test_sums_same_tick_items(self):
        from repro.streams.generators import StreamItem

        items = [StreamItem(0, 1.0), StreamItem(2, 2.0), StreamItem(2, 3.0)]
        np.testing.assert_allclose(trace_to_dense(items), [1.0, 0.0, 5.0])

    def test_length_pads_and_bounds(self):
        from repro.streams.generators import StreamItem

        items = [StreamItem(1, 4.0)]
        np.testing.assert_allclose(
            trace_to_dense(items, length=4), [0.0, 4.0, 0.0, 0.0]
        )
        with pytest.raises(InvalidParameterError):
            trace_to_dense(items, length=1)

    def test_bridges_ingest_and_dense_kernels(self):
        from repro.core.decay import PolynomialDecay as Poly
        from repro.core.exact import ExactDecayingSum as Exact
        from repro.streams.generators import bernoulli_stream

        items = list(bernoulli_stream(100, 0.6, seed=4))
        decay = Poly(1.0)
        engine = Exact(decay)
        engine.ingest(items, until=99)
        dense = trace_to_dense(items, length=100)
        assert decayed_sum_dense(dense, decay) == pytest.approx(
            engine.query().value
        )

    def test_empty_trace_gives_single_zero(self):
        np.testing.assert_allclose(trace_to_dense([]), [0.0])
