"""One out-of-order policy, every ingestion surface.

The tentpole contract: ``ingest_trace``, ``streams.io.replay``,
``StreamFleet.observe_batch`` and ``ShardedDecayingSum.ingest`` all route
late items through the same :class:`OutOfOrderPolicy`, with the default
``raise`` kind preserving the historical ``TimeOrderError`` behavior,
``drop`` matching the on-time-survivor replay plus an audited ledger, and
``buffer`` matching the sorted replay for items within the lateness
window.  Order-insensitive engines (the forward family) accept late items
directly under *every* policy.
"""

import random

import pytest

from repro.core.batching import ingest_trace
from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.core.errors import TimeOrderError
from repro.core.ewma import ExponentialSum
from repro.core.exact import ExactDecayingSum
from repro.core.forward import ForwardDecay, ForwardDecaySum
from repro.core.interfaces import make_decaying_sum
from repro.core.timeorder import OutOfOrderPolicy
from repro.fleet import StreamFleet
from repro.parallel.sharded import ShardedDecayingSum
from repro.streams.generators import StreamItem
from repro.streams.io import KeyedItem, replay


def triplet(engine):
    est = engine.query()
    return est.value, est.lower, est.upper


def close(engine, reference):
    """Triplet agreement up to advance-partition rounding.

    The buffered path advances the clock in LatenessBuffer's frontier
    steps; registers that multiply per advance (ewma) may differ from the
    plain replay by an ulp, which the buffer contract permits.
    """
    return triplet(engine) == pytest.approx(triplet(reference), rel=1e-12)


def fresh_engines():
    """One engine per family that rejects out-of-order input natively."""
    return [
        ExactDecayingSum(PolynomialDecay(1.0)),
        ExponentialSum(ExponentialDecay(0.1)),
        make_decaying_sum(PolynomialDecay(1.0), epsilon=0.1),
    ]


LATE_TRACE = [
    StreamItem(0, 1.0),
    StreamItem(5, 2.0),
    StreamItem(3, 4.0),  # 2 ticks late
    StreamItem(8, 1.0),
    StreamItem(1, 8.0),  # 7 ticks late
    StreamItem(9, 1.0),
]
ON_TIME = [i for i in LATE_TRACE if i.time not in (3, 1)]
SORTED_TRACE = sorted(LATE_TRACE, key=lambda i: i.time)


class TestIngestTraceMatrix:
    def test_default_and_explicit_raise(self):
        for engine in fresh_engines():
            with pytest.raises(TimeOrderError):
                ingest_trace(engine, LATE_TRACE)
        for engine in fresh_engines():
            with pytest.raises(TimeOrderError):
                ingest_trace(
                    engine, LATE_TRACE, policy=OutOfOrderPolicy.raising()
                )

    def test_policies_neutral_on_sorted_traces(self):
        # raise and drop share the plain replay loop: bit-identical.
        # buffer re-partitions clock advances, so it is neutral only up
        # to register rounding.
        for make_policy, exact in (
            (OutOfOrderPolicy.raising, True),
            (OutOfOrderPolicy.dropping, True),
            (lambda: OutOfOrderPolicy.buffered(4), False),
        ):
            for engine, reference in zip(fresh_engines(), fresh_engines()):
                policy = make_policy()
                ingest_trace(engine, SORTED_TRACE, until=12, policy=policy)
                ingest_trace(reference, SORTED_TRACE, until=12)
                if exact:
                    assert triplet(engine) == triplet(reference)
                else:
                    assert close(engine, reference)
                assert policy.dropped_count == 0

    def test_drop_matches_survivor_replay_and_ledger(self):
        for engine, reference in zip(fresh_engines(), fresh_engines()):
            policy = OutOfOrderPolicy.dropping()
            ingest_trace(engine, LATE_TRACE, until=12, policy=policy)
            ingest_trace(reference, ON_TIME, until=12)
            assert triplet(engine) == triplet(reference)
            assert policy.dropped_count == 2
            assert policy.dropped_weight == 12.0

    def test_buffer_window_recovers_sorted_replay(self):
        # A window covering the worst lateness (7) loses nothing.
        for engine, reference in zip(fresh_engines(), fresh_engines()):
            policy = OutOfOrderPolicy.buffered(7)
            ingest_trace(engine, LATE_TRACE, until=12, policy=policy)
            ingest_trace(reference, SORTED_TRACE, until=12)
            assert close(engine, reference)
            assert policy.dropped_count == 0

    def test_buffer_window_drops_the_stragglers(self):
        # A window of 2 admits the 2-tick-late item, drops the 7-tick one.
        survivors = sorted(
            (i for i in LATE_TRACE if i.time != 1), key=lambda i: i.time
        )
        for engine, reference in zip(fresh_engines(), fresh_engines()):
            policy = OutOfOrderPolicy.buffered(2)
            ingest_trace(engine, LATE_TRACE, until=12, policy=policy)
            ingest_trace(reference, survivors, until=12)
            assert close(engine, reference)
            assert policy.dropped_count == 1
            assert policy.dropped_weight == 8.0

    def test_forward_engines_bypass_every_policy(self):
        for make_policy in (
            lambda: None,
            OutOfOrderPolicy.raising,
            OutOfOrderPolicy.dropping,
            lambda: OutOfOrderPolicy.buffered(2),
        ):
            policy = make_policy()
            engine = ForwardDecaySum(ForwardDecay("exp", 0.05))
            reference = ForwardDecaySum(ForwardDecay("exp", 0.05))
            ingest_trace(engine, LATE_TRACE, until=12, policy=policy)
            ingest_trace(reference, SORTED_TRACE, until=12)
            assert triplet(engine) == triplet(reference)
            if policy is not None:
                assert policy.dropped_count == 0


class TestReplaySurface:
    def test_replay_threads_the_policy(self):
        policy = OutOfOrderPolicy.dropping()
        engine = replay(
            LATE_TRACE,
            ExactDecayingSum(PolynomialDecay(1.0)),
            until=12,
            policy=policy,
        )
        reference = replay(
            ON_TIME, ExactDecayingSum(PolynomialDecay(1.0)), until=12
        )
        assert triplet(engine) == triplet(reference)
        assert policy.dropped_count == 2

    def test_replay_default_still_raises(self):
        with pytest.raises(TimeOrderError):
            replay(LATE_TRACE, ExactDecayingSum(PolynomialDecay(1.0)))


class TestFleetSurface:
    KEYED_LATE = [
        KeyedItem("a", 0, 1.0),
        KeyedItem("b", 5, 2.0),
        KeyedItem("a", 3, 4.0),  # late
        KeyedItem("b", 8, 1.0),
    ]

    def test_default_raises(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        with pytest.raises(TimeOrderError):
            fleet.observe_batch(self.KEYED_LATE)

    def test_drop_counts_on_the_ledger(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        policy = OutOfOrderPolicy.dropping()
        fleet.observe_batch(self.KEYED_LATE, policy=policy)
        reference = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        reference.observe_batch(
            [i for i in self.KEYED_LATE if i.time != 3]
        )
        assert policy.dropped_count == 1
        assert policy.dropped_weight == 4.0
        for key in ("a", "b"):
            assert fleet.rating(key).value == reference.rating(key).value

    def test_buffer_reorders_whole_keyed_items(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        policy = OutOfOrderPolicy.buffered(5)
        fleet.observe_batch(self.KEYED_LATE, policy=policy)
        reference = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        reference.observe_batch(
            sorted(self.KEYED_LATE, key=lambda i: i.time)
        )
        assert policy.dropped_count == 0
        for key in ("a", "b"):
            assert fleet.rating(key).value == reference.rating(key).value


class TestShardedSurface:
    def test_policy_threads_through_the_pool(self):
        pool = ShardedDecayingSum(PolynomialDecay(1.0), 0.1, shards=2)
        policy = OutOfOrderPolicy.dropping()
        pool.ingest(LATE_TRACE, until=12, policy=policy)
        reference = ShardedDecayingSum(PolynomialDecay(1.0), 0.1, shards=2)
        reference.ingest(ON_TIME, until=12)
        assert policy.dropped_count == 2
        assert triplet(pool) == triplet(reference)

    def test_default_raises(self):
        pool = ShardedDecayingSum(PolynomialDecay(1.0), 0.1, shards=2)
        with pytest.raises(TimeOrderError):
            pool.ingest(LATE_TRACE)

    def test_forward_pool_is_order_insensitive(self):
        def pool_for():
            return ShardedDecayingSum(
                ForwardDecay("exp", 0.05),
                0.1,
                shards=3,
                factory=lambda: ForwardDecaySum(ForwardDecay("exp", 0.05)),
            )

        pool = pool_for()
        assert pool.supports_out_of_order
        pool.ingest(LATE_TRACE, until=12)
        reference = pool_for()
        reference.ingest(SORTED_TRACE, until=12)
        assert triplet(pool) == triplet(reference)

    def test_backward_pool_rejects_add_at(self):
        from repro.core.errors import NotApplicableError

        pool = ShardedDecayingSum(PolynomialDecay(1.0), 0.1, shards=2)
        assert not pool.supports_out_of_order
        with pytest.raises(NotApplicableError):
            pool.add_at(3, 1.0)


class TestCrossSurfaceAgreement:
    def test_drop_policy_agrees_across_surfaces(self):
        rng = random.Random(17)
        trace = [
            StreamItem(max(0, rng.randrange(0, 60) - rng.choice([0, 0, 9])), 1.0)
            for _ in range(200)
        ]
        direct = ExactDecayingSum(PolynomialDecay(1.0))
        direct_policy = OutOfOrderPolicy.dropping()
        ingest_trace(direct, trace, until=70, policy=direct_policy)
        via_replay = replay(
            trace,
            ExactDecayingSum(PolynomialDecay(1.0)),
            until=70,
            policy=OutOfOrderPolicy.dropping(),
        )
        assert triplet(direct) == triplet(via_replay)
