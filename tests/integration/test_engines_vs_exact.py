"""Integration: every engine against ground truth on shared workloads.

The paper's accuracy claims, exercised end-to-end: for each (engine, decay)
pair supported by the factory, drive the same stream into the engine and
the exact reference and verify certified brackets and (1 +- eps) accuracy
at many query points.
"""

import pytest

from repro.benchkit.harness import measure_accuracy
from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)
from repro.core.ewma import ExponentialSum, GeneralPolyexpSum
from repro.core.interfaces import make_decaying_sum
from repro.histograms.ceh import CascadedEH
from repro.histograms.eh import SlidingWindowSum
from repro.histograms.wbmh import WBMH
from repro.streams.generators import bernoulli_stream, bursty_stream

EPS = 0.1

CASES = [
    ("ewma", ExponentialDecay(0.01), lambda d: ExponentialSum(d)),
    ("eh", SlidingWindowDecay(128), lambda d: SlidingWindowSum(d.window, EPS)),
    ("ceh-polyd", PolynomialDecay(1.0), lambda d: CascadedEH(d, EPS)),
    ("ceh-linear", LinearDecay(200), lambda d: CascadedEH(d, EPS)),
    ("ceh-table", TableDecay([1, 0.8, 0.6, 0.4, 0.2], tail=0.1),
     lambda d: CascadedEH(d, EPS)),
    ("ceh-sliwin", SlidingWindowDecay(128), lambda d: CascadedEH(d, EPS)),
    ("wbmh-polyd05", PolynomialDecay(0.5), lambda d: WBMH(d, EPS)),
    ("wbmh-polyd2", PolynomialDecay(2.0), lambda d: WBMH(d, EPS)),
    ("wbmh-logd", LogarithmicDecay(), lambda d: WBMH(d, EPS)),
    ("wbmh-scan", PolynomialDecay(1.0),
     lambda d: WBMH(d, EPS, merge_strategy="scan")),
    ("polyexp-general", PolyExpPolynomialDecay([1.0, 0.5], 0.02),
     lambda d: GeneralPolyexpSum(d)),
]


@pytest.mark.parametrize("name,decay,factory", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize(
    "workload",
    ["bernoulli", "bursty"],
)
def test_engine_within_epsilon_and_bracketed(name, decay, factory, workload):
    if workload == "bernoulli":
        items = list(bernoulli_stream(2500, 0.5, seed=101))
    else:
        items = list(bursty_stream(2500, on_mean=30, off_mean=120, seed=202))
    result = measure_accuracy(
        lambda: factory(decay), decay, items, query_every=41, until=2600
    )
    assert result.bracket_violations == 0
    assert result.max_rel_error <= EPS + 1e-9, name
    assert result.queries > 10


def test_factory_engines_agree_with_each_other():
    # The same decay function answered by CEH and WBMH must agree within
    # their combined tolerance.
    decay = PolynomialDecay(1.5)
    ceh = CascadedEH(decay, 0.05)
    wbmh = WBMH(decay, 0.05)
    items = list(bernoulli_stream(1500, 0.4, seed=33))
    idx = 0
    for t in range(1600):
        while idx < len(items) and items[idx].time == t:
            ceh.add(1)
            wbmh.add(1)
            idx += 1
        ceh.advance(1)
        wbmh.advance(1)
    a, b = ceh.query().value, wbmh.query().value
    assert abs(a - b) / max(a, b) < 0.1


def test_make_decaying_sum_end_to_end():
    for decay in (
        ExponentialDecay(0.02),
        SlidingWindowDecay(64),
        PolynomialDecay(1.0),
        LinearDecay(100),
    ):
        engine = make_decaying_sum(decay, epsilon=0.1)
        items = list(bernoulli_stream(800, 0.5, seed=55))
        result = measure_accuracy(lambda: engine, decay, items, until=900)
        assert result.bracket_violations == 0
        assert result.max_rel_error <= 0.1 + 1e-9, decay.describe()
