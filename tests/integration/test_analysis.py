"""Tests for the crossover analytics (the Figure 1 questions as code)."""

import pytest

from repro.analysis import Crossover, can_cross, find_crossover, verdict_matrix
from repro.apps.gateway import rate_trace
from repro.core.decay import (
    ExponentialDecay,
    GaussianDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.streams.traces import figure1_traces

L1, L2 = figure1_traces()


class TestFindCrossover:
    def test_polyd_crossover_exists_and_verdict_flips(self):
        result = find_crossover(L1, L2, PolynomialDecay(1.0))
        assert result.time is not None
        assert result.initial_leader == "L1"
        assert result.final_leader == "L2"
        # The found time is the first flip: verify on both sides.
        g = PolynomialDecay(1.0)
        before = result.time - 1
        assert rate_trace(L1, g, [before])[0] <= rate_trace(L2, g, [before])[0]
        assert rate_trace(L1, g, [result.time])[0] > rate_trace(
            L2, g, [result.time]
        )[0]

    def test_expd_never_crosses(self):
        result = find_crossover(L1, L2, ExponentialDecay(1.0 / 2880))
        assert result.time is None
        assert result.initial_leader == result.final_leader

    def test_stronger_decay_crosses_later(self):
        t1 = find_crossover(L1, L2, PolynomialDecay(1.0)).time
        t2 = find_crossover(L1, L2, PolynomialDecay(2.0)).time
        assert t1 is not None and t2 is not None
        assert t2 != t1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            find_crossover(L1, L2, PolynomialDecay(1.0), start=0)
        with pytest.raises(InvalidParameterError):
            find_crossover(L1, L2, PolynomialDecay(1.0),
                           start=10**7, horizon=10**6)


class TestVerdictMatrix:
    def test_matrix_shape_and_content(self):
        probes = [L2.events[0].end + h for h in (60, 60_000, 6_000_000)]
        decays = [
            SlidingWindowDecay(360),
            ExponentialDecay(1.0 / 1440),
            PolynomialDecay(1.0),
        ]
        matrix = verdict_matrix(L1, L2, decays, probes)
        assert len(matrix) == 3
        assert all(len(row) == 3 for row in matrix)
        # SLIWIN(6h) has forgotten L1 at every probe -> prefers L1 (0 < x)
        # until L2's event also leaves (tie).
        assert matrix[0][0] == "L1"
        assert matrix[0][-1] == "tie"
        # POLYD flips from L1 to L2.
        assert matrix[2][0] == "L1"
        assert matrix[2][-1] == "L2"

    def test_unsorted_probes_rejected(self):
        with pytest.raises(InvalidParameterError):
            verdict_matrix(L1, L2, [PolynomialDecay(1.0)], [10, 5])


class TestCanCross:
    def test_family_classification(self):
        assert not can_cross(ExponentialDecay(0.1))
        assert can_cross(PolynomialDecay(1.0))
        assert can_cross(LogarithmicDecay())
        assert can_cross(SlidingWindowDecay(100))  # by forgetting
        assert can_cross(GaussianDecay(50.0))  # ratio moves (other way)

    def test_consistent_with_crossover_search(self):
        # Families that cannot cross never produce a crossover time.
        for g in (ExponentialDecay(1.0 / 500), ExponentialDecay(1.0 / 5000)):
            assert find_crossover(L1, L2, g).time is None
