"""Integration: the full Figure 1 narrative (paper section 1.2).

Three claims, each checked against the minute-resolution trace:

1. SLIWIN with a small window completely discounts L1's failure; with a
   large window the verdict flips abruptly from "L2 much worse" to
   "L1 much worse" as L1's event leaves the window.
2. EXPD keeps the two events' relative contribution constant forever.
3. POLYD produces the smooth crossover: L1 initially more reliable, L2
   eventually more reliable -- the behaviour impossible for the other two
   families.
"""

import pytest

from repro.apps.gateway import rate_trace
from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.streams.traces import MINUTES_PER_HOUR, figure1_traces

L1, L2 = figure1_traces()
L2_END = L2.events[0].end  # minute the last failure ends


def probes(*hours_after_l2):
    return [L2_END + h * MINUTES_PER_HOUR for h in hours_after_l2]


class TestSlidingWindows:
    def test_small_window_forgets_l1_entirely(self):
        # A 6-hour window at any probe after L2's failure has already
        # dropped L1's event (which ended 24.5h before L2's).
        w = SlidingWindowDecay(6 * MINUTES_PER_HOUR)
        times = probes(1, 3)
        r1 = rate_trace(L1, w, times)
        assert r1 == [0.0, 0.0]
        r2 = rate_trace(L2, w, times)
        assert r2[0] > 0  # L2's failure is still in the window

    def test_large_window_flips_abruptly(self):
        # A 48h window: while both events are inside, L1 is worse; once
        # L1's event exits, L2 is worse -- opposite of the expected
        # convergence, and discontinuous.
        w = SlidingWindowDecay(48 * MINUTES_PER_HOUR)
        inside = probes(1)
        r1_in = rate_trace(L1, w, inside)[0]
        r2_in = rate_trace(L2, w, inside)[0]
        assert r1_in > r2_in  # L1 much worse while remembered
        after = [L1.events[0].end + 48 * MINUTES_PER_HOUR + 10 * MINUTES_PER_HOUR]
        r1_out = rate_trace(L1, w, after)[0]
        r2_out = rate_trace(L2, w, after)[0]
        assert r1_out == 0.0
        assert r2_out > 0.0  # verdict flipped to L2-much-worse


class TestExponentialDecay:
    @pytest.mark.parametrize("halflife_hours", [6, 24, 72])
    def test_ratio_constant_over_time(self, halflife_hours):
        lam = 0.693 / (halflife_hours * MINUTES_PER_HOUR)
        g = ExponentialDecay(lam)
        times = probes(1, 10, 30)
        r1 = rate_trace(L1, g, times)
        r2 = rate_trace(L2, g, times)
        ratios = [a / b for a, b in zip(r1, r2) if b > 0]
        assert len(ratios) >= 2
        for r in ratios[1:]:
            assert r == pytest.approx(ratios[0], rel=1e-6)


class TestPolynomialDecay:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0])
    def test_l2_eventually_more_reliable(self, alpha):
        # "Regardless of the initial rating, as time progresses ... we
        # expect L2 ... to emerge eventually as more reliable than L1."
        g = PolynomialDecay(alpha)
        times = probes(1, 24, 24 * 30, 24 * 365, 24 * 365 * 20)
        r1 = rate_trace(L1, g, times)
        r2 = rate_trace(L2, g, times)
        verdicts = [a > b for a, b in zip(r1, r2)]  # True = L1 worse
        assert verdicts[-1] is True
        # The flip (if any) is monotone: a single crossover.
        first_true = verdicts.index(True)
        assert all(verdicts[first_true:])

    def test_alpha_tunes_the_initial_verdict(self):
        # The "rich range of decay rates" claim: one hour after L2's
        # failure, strong decay (alpha=2) still rates the recent small
        # event as worse (L1 more reliable), while weak decay (alpha=0.5)
        # already weighs severity and rates L1 worse.
        t = probes(1)
        weak = PolynomialDecay(0.5)
        strong = PolynomialDecay(2.0)
        assert rate_trace(L1, weak, t)[0] > rate_trace(L2, weak, t)[0]
        assert rate_trace(L1, strong, t)[0] < rate_trace(L2, strong, t)[0]

    def test_ratio_converges_to_severity_ratio(self):
        g = PolynomialDecay(1.0)
        far = [L2_END + 10**7]
        r1 = rate_trace(L1, g, far)[0]
        r2 = rate_trace(L2, g, far)[0]
        assert r1 / r2 == pytest.approx(
            L1.total_down_minutes() / L2.total_down_minutes(), rel=0.01
        )

    def test_crossover_time_grows_with_alpha(self):
        # Stronger decay -> recency matters longer -> later crossover in
        # relative terms? (For this scenario the crossover age scales like
        # the gap times a function of alpha; just verify ordering between
        # two alphas by scanning.)
        def crossover(alpha):
            g = PolynomialDecay(alpha)
            lo, hi = L2_END + 1, L2_END + 10**7
            while lo < hi:
                mid = (lo + hi) // 2
                r1 = rate_trace(L1, g, [mid])[0]
                r2 = rate_trace(L2, g, [mid])[0]
                if r1 > r2:
                    hi = mid
                else:
                    lo = mid + 1
            return lo

        c1 = crossover(1.0)
        c2 = crossover(2.0)
        assert c1 != c2  # alpha genuinely tunes the crossover point
        for c, alpha in ((c1, 1.0), (c2, 2.0)):
            g = PolynomialDecay(alpha)
            assert rate_trace(L1, g, [c])[0] > rate_trace(L2, g, [c])[0]
