"""Checkpoint round-trips: restored engines continue streams identically."""

import json
import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    GaussianDecay,
    LinearDecay,
    LogarithmicDecay,
    NoDecay,
    PolyexponentialDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.ewma import ExponentialSum
from repro.core.exact import ExactDecayingSum
from repro.counters.morris import MorrisCounter
from repro.histograms.ceh import CascadedEH
from repro.histograms.domination import DominationHistogram
from repro.histograms.eh import ExponentialHistogram, SlidingWindowSum
from repro.histograms.wbmh import WBMH
from repro.serialize import (
    decay_from_dict,
    decay_to_dict,
    engine_from_dict,
    engine_to_dict,
)

ALL_DECAYS = [
    ExponentialDecay(0.07),
    GaussianDecay(42.0),
    SlidingWindowDecay(64),
    PolynomialDecay(1.5),
    PolyexponentialDecay(2, 0.1),
    PolyExpPolynomialDecay([1.0, 0.5], 0.1),
    LinearDecay(100),
    LogarithmicDecay(3.0),
    TableDecay([1.0, 0.5, 0.25], tail=0.1),
    NoDecay(),
]

ENGINES = [
    ("ewma", lambda: ExponentialSum(ExponentialDecay(0.05))),
    ("exact", lambda: ExactDecayingSum(PolynomialDecay(1.0))),
    ("eh", lambda: ExponentialHistogram(128, 0.1)),
    ("eh-unbounded", lambda: ExponentialHistogram(None, 0.2)),
    ("sliwin-sum", lambda: SlidingWindowSum(64, 0.1)),
    ("domination", lambda: DominationHistogram(100, 0.1, compact_every=3)),
    ("ceh", lambda: CascadedEH(PolynomialDecay(1.0), 0.1)),
    ("ceh-dom", lambda: CascadedEH(LinearDecay(80), 0.1, backend="domination",
                                   estimator="upper")),
    ("wbmh-level", lambda: WBMH(PolynomialDecay(1.0), 0.1)),
    ("wbmh-fixed", lambda: WBMH(PolynomialDecay(2.0), 0.1, horizon=4096)),
    ("wbmh-scan", lambda: WBMH(LogarithmicDecay(), 0.2, quantize=False,
                               merge_strategy="scan")),
]


class TestDecayRoundtrip:
    @pytest.mark.parametrize("decay", ALL_DECAYS, ids=lambda d: d.describe())
    def test_roundtrip_preserves_weights(self, decay):
        data = json.loads(json.dumps(decay_to_dict(decay)))
        restored = decay_from_dict(data)
        assert type(restored) is type(decay)
        for age in (0, 1, 7, 100):
            assert restored.weight(age) == decay.weight(age)

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidParameterError):
            decay_from_dict({"family": "wat"})


def drive(engine, stream, *, integers):
    for gap, value in stream:
        engine.advance(gap)
        engine.add(round(value) if integers else value)


class TestEngineRoundtrip:
    @pytest.mark.parametrize("name,factory", ENGINES, ids=[e[0] for e in ENGINES])
    def test_restored_engine_continues_identically(self, name, factory):
        integers = name.startswith(("eh", "sliwin", "ceh")) and "dom" not in name
        rng = random.Random(hash(name) & 0xFFFF)
        prefix = [(rng.randint(0, 3), rng.uniform(1, 3)) for _ in range(150)]
        suffix = [(rng.randint(0, 3), rng.uniform(1, 3)) for _ in range(100)]

        original = factory()
        drive(original, prefix, integers=integers)
        snapshot = json.loads(json.dumps(engine_to_dict(original)))
        restored = engine_from_dict(snapshot)

        assert restored.time == original.time
        assert restored.query().value == pytest.approx(original.query().value)

        drive(original, suffix, integers=integers)
        drive(restored, suffix, integers=integers)
        est_o = original.query()
        est_r = restored.query()
        assert est_r.value == pytest.approx(est_o.value)
        assert est_r.lower == pytest.approx(est_o.lower)
        assert est_r.upper == pytest.approx(est_o.upper)

    def test_wbmh_bucket_lattice_survives(self):
        w = WBMH(PolynomialDecay(1.0), 0.15)
        for _ in range(300):
            w.add(1.0)
            w.advance(1)
        restored = engine_from_dict(engine_to_dict(w))
        assert restored.bucket_arrival_sets() == w.bucket_arrival_sets()

    def test_randomized_engines_rejected(self):
        m = MorrisCounter(seed=1)
        with pytest.raises(InvalidParameterError):
            engine_to_dict(m)

    def test_version_checked(self):
        state = engine_to_dict(ExponentialSum(ExponentialDecay(0.1)))
        state["version"] = 999
        with pytest.raises(InvalidParameterError):
            engine_from_dict(state)

    def test_unknown_engine_kind(self):
        with pytest.raises(InvalidParameterError):
            engine_from_dict({"version": 1, "engine": "mystery"})
