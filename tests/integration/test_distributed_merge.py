"""Distributed-stream merging via stream-independent boundaries.

The paper (sections 2.3 and 5, and the Gibbons–Tirthapura reference)
stresses that stream-independent bucket boundaries matter; one concrete
payoff is that two WBMHs driven in lock-step over *different* streams have
identical lattices and merge losslessly by adding bucket counts. These
tests verify that merging k engines equals one engine fed the union
stream, and that EXPD registers merge by addition.
"""

import random

import pytest

from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.exact import ExactDecayingSum
from repro.core.ewma import ExponentialSum
from repro.histograms.wbmh import WBMH


def make_streams(n_streams, length, seed):
    rng = random.Random(seed)
    streams = []
    for _ in range(n_streams):
        streams.append(
            [rng.uniform(0.5, 2.0) if rng.random() < 0.4 else 0.0
             for _ in range(length)]
        )
    return streams


class TestWBMHAbsorb:
    @pytest.mark.parametrize("strategy", ["scan", "scheduled"])
    def test_merge_of_three_equals_union(self, strategy):
        decay = PolynomialDecay(1.0)
        streams = make_streams(3, 600, seed=4)
        engines = [
            WBMH(decay, 0.15, merge_strategy=strategy, quantize=False)
            for _ in streams
        ]
        union = WBMH(decay, 0.15, merge_strategy=strategy, quantize=False)
        for t in range(600):
            total = 0.0
            for engine, stream in zip(engines, streams):
                if stream[t]:
                    engine.add(stream[t])
                total += stream[t]
            if total:
                union.add(total)
            for engine in engines:
                engine.advance(1)
            union.advance(1)
        merged = engines[0]
        merged.absorb(engines[1])
        merged.absorb(engines[2])
        assert merged.bucket_arrival_sets() == union.bucket_arrival_sets()
        assert merged.query().value == pytest.approx(union.query().value)

    def test_quantized_merge_stays_accurate(self):
        decay = PolynomialDecay(1.0)
        streams = make_streams(2, 800, seed=7)
        a = WBMH(decay, 0.1)
        b = WBMH(decay, 0.1)
        exact = ExactDecayingSum(decay)
        for t in range(800):
            if streams[0][t]:
                a.add(streams[0][t])
                exact.add(streams[0][t])
            if streams[1][t]:
                b.add(streams[1][t])
                exact.add(streams[1][t])
            a.advance(1)
            b.advance(1)
            exact.advance(1)
        a.absorb(b)
        est = a.query()
        true = exact.query().value
        assert est.contains(true)
        assert est.relative_error_vs(true) < 0.1 + 0.01  # +1 merge level

    def test_merged_engine_keeps_running(self):
        decay = PolynomialDecay(2.0)
        a = WBMH(decay, 0.2)
        b = WBMH(decay, 0.2)
        exact = ExactDecayingSum(decay)
        for _ in range(100):
            a.add(1)
            b.add(2)
            exact.add(3)
            a.advance(1)
            b.advance(1)
            exact.advance(1)
        a.absorb(b)
        for _ in range(200):  # continue the merged engine afterwards
            a.add(1)
            exact.add(1)
            a.advance(1)
            exact.advance(1)
        est = a.query()
        assert est.contains(exact.query().value)

    def test_rejects_incompatible(self):
        a = WBMH(PolynomialDecay(1.0), 0.1)
        with pytest.raises(InvalidParameterError):
            a.absorb(a)
        b = WBMH(PolynomialDecay(1.0), 0.1)
        b.advance(5)
        with pytest.raises(TimeOrderError):
            a.absorb(b)
        c = WBMH(PolynomialDecay(1.0), 0.3)
        with pytest.raises(InvalidParameterError):
            a.absorb(c)


class TestEwmaAbsorb:
    def test_registers_add(self):
        lam = 0.05
        a = ExponentialSum(ExponentialDecay(lam))
        b = ExponentialSum(ExponentialDecay(lam))
        union = ExponentialSum(ExponentialDecay(lam))
        rng = random.Random(11)
        for _ in range(300):
            x, y = rng.random(), rng.random()
            a.add(x)
            b.add(y)
            union.add(x + y)
            a.advance(1)
            b.advance(1)
            union.advance(1)
        a.absorb(b)
        assert a.query().value == pytest.approx(union.query().value)

    def test_rejects_mismatches(self):
        a = ExponentialSum(ExponentialDecay(0.1))
        b = ExponentialSum(ExponentialDecay(0.2))
        with pytest.raises(InvalidParameterError):
            a.absorb(b)
        c = ExponentialSum(ExponentialDecay(0.1))
        c.advance(3)
        with pytest.raises(TimeOrderError):
            a.absorb(c)
        with pytest.raises(InvalidParameterError):
            a.absorb(a)
