"""Clock-semantics contract tests shared by every engine.

Items arrive at the engine's current time; `advance` moves time forward;
queries are repeatable and side-effect free; big jumps equal many small
steps. These hold for every engine uniformly -- the kind of contract a
downstream user silently relies on.
"""

import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    PolyExpPolynomialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.ewma import ExponentialSum, GeneralPolyexpSum
from repro.core.exact import ExactDecayingSum
from repro.histograms.ceh import CascadedEH
from repro.histograms.domination import DominationHistogram
from repro.histograms.eh import ExponentialHistogram
from repro.histograms.wbmh import WBMH

ENGINES = [
    ("exact", lambda: ExactDecayingSum(PolynomialDecay(1.0))),
    ("ewma", lambda: ExponentialSum(ExponentialDecay(0.05))),
    ("eh", lambda: ExponentialHistogram(64, 0.2)),
    ("domination", lambda: DominationHistogram(64, 0.2)),
    ("ceh", lambda: CascadedEH(PolynomialDecay(1.0), 0.2)),
    ("ceh-linear", lambda: CascadedEH(LinearDecay(64), 0.2)),
    ("wbmh", lambda: WBMH(PolynomialDecay(1.0), 0.2)),
    ("polyexp", lambda: GeneralPolyexpSum(
        PolyExpPolynomialDecay([1.0, 0.2], 0.05))),
]

IDS = [e[0] for e in ENGINES]


@pytest.mark.parametrize("name,factory", ENGINES, ids=IDS)
class TestClockContract:
    def test_advance_zero_is_noop(self, name, factory):
        e = factory()
        e.add(1)
        before = e.query().value
        e.advance(0)
        assert e.time == 0
        assert e.query().value == before

    def test_query_is_idempotent(self, name, factory):
        e = factory()
        for _ in range(30):
            e.add(1)
            e.advance(1)
        first = e.query()
        for _ in range(5):
            again = e.query()
            assert again.value == first.value
            assert again.lower == first.lower
            assert again.upper == first.upper

    def test_big_jump_equals_small_steps(self, name, factory):
        a = factory()
        b = factory()
        for engine in (a, b):
            for _ in range(10):
                engine.add(1)
                engine.advance(1)
        a.advance(37)
        for _ in range(37):
            b.advance(1)
        assert a.time == b.time
        assert a.query().value == pytest.approx(b.query().value)

    def test_same_tick_adds_accumulate(self, name, factory):
        a = factory()
        b = factory()
        a.add(1)
        a.add(1)
        a.add(1)
        b.add(3) if name in ("eh", "exact", "domination") else [
            b.add(1) for _ in range(3)
        ]
        a.advance(5)
        b.advance(5)
        assert a.query().value == pytest.approx(b.query().value)

    def test_fresh_engine_is_empty(self, name, factory):
        e = factory()
        assert e.time == 0
        assert e.query().value == 0.0
        e.advance(100)
        assert e.query().value == 0.0
