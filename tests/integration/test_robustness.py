"""Failure injection and boundary-condition robustness across engines.

Extreme parameters, degenerate streams, hostile values -- each engine must
either handle the input correctly or reject it loudly; silent corruption
is the only disallowed outcome.
"""

import math

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.ewma import ExponentialSum
from repro.core.exact import ExactDecayingSum
from repro.histograms.ceh import CascadedEH
from repro.histograms.domination import DominationHistogram
from repro.histograms.eh import ExponentialHistogram
from repro.histograms.wbmh import WBMH

REAL_ENGINES = [
    ("exact", lambda: ExactDecayingSum(PolynomialDecay(1.0))),
    ("ewma", lambda: ExponentialSum(ExponentialDecay(0.1))),
    ("domination", lambda: DominationHistogram(None, 0.1)),
    ("wbmh", lambda: WBMH(PolynomialDecay(1.0), 0.1)),
]


class TestHostileValues:
    @pytest.mark.parametrize("name,factory", REAL_ENGINES,
                             ids=[e[0] for e in REAL_ENGINES])
    def test_huge_values_survive(self, name, factory):
        e = factory()
        e.add(1e15)
        e.advance(10)
        e.add(1.0)
        est = e.query()
        assert math.isfinite(est.value)
        assert est.lower <= est.value <= est.upper

    @pytest.mark.parametrize("name,factory", REAL_ENGINES,
                             ids=[e[0] for e in REAL_ENGINES])
    def test_tiny_values_survive(self, name, factory):
        e = factory()
        for _ in range(50):
            e.add(1e-12)
            e.advance(1)
        assert e.query().value >= 0.0

    @pytest.mark.parametrize("name,factory", REAL_ENGINES,
                             ids=[e[0] for e in REAL_ENGINES])
    def test_negative_rejected(self, name, factory):
        e = factory()
        with pytest.raises(InvalidParameterError):
            e.add(-1.0)

    def test_mixed_magnitudes_bracket_valid(self):
        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.1)
        exact = ExactDecayingSum(decay)
        for i in range(200):
            v = 1e9 if i % 50 == 0 else 1e-6
            w.add(v)
            exact.add(v)
            w.advance(1)
            exact.advance(1)
        assert w.query().contains(exact.query().value)


class TestExtremeParameters:
    def test_tiny_epsilon_eh(self):
        eh = ExponentialHistogram(64, 0.001)
        for _ in range(500):
            eh.add(1)
            eh.advance(1)
        est = eh.query()
        # With eps this small and N=64, estimates are effectively exact.
        assert est.contains(63)
        assert est.upper - est.lower <= 1.0 + 64 * 0.001 * 2

    def test_near_one_epsilon(self):
        for factory in (
            lambda: CascadedEH(PolynomialDecay(1.0), 0.99),
            lambda: WBMH(PolynomialDecay(1.0), 0.99),
        ):
            e = factory()
            exact = ExactDecayingSum(PolynomialDecay(1.0))
            for _ in range(300):
                e.add(1)
                exact.add(1)
                e.advance(1)
                exact.advance(1)
            assert e.query().contains(exact.query().value)

    def test_window_one(self):
        eh = ExponentialHistogram(1, 0.5)
        for _ in range(20):
            eh.add(1)
            eh.advance(1)
        assert eh.query().value == 0.0  # after advance, the item has age 1
        eh.add(1)
        assert eh.query().contains(1.0)

    def test_very_fast_polyd(self):
        decay = PolynomialDecay(8.0)
        w = WBMH(decay, 0.2)
        exact = ExactDecayingSum(decay)
        for _ in range(200):
            w.add(1)
            exact.add(1)
            w.advance(1)
            exact.advance(1)
        assert w.query().contains(exact.query().value)

    def test_very_slow_polyd(self):
        decay = PolynomialDecay(0.01)
        w = WBMH(decay, 0.2)
        exact = ExactDecayingSum(decay)
        for _ in range(500):
            w.add(1)
            exact.add(1)
            w.advance(1)
            exact.advance(1)
        est = w.query()
        true = exact.query().value
        assert est.contains(true)
        assert est.relative_error_vs(true) <= 0.2


class TestDegenerateStreams:
    def test_single_item_then_silence(self):
        for factory in (
            lambda: CascadedEH(PolynomialDecay(1.0), 0.1),
            lambda: WBMH(PolynomialDecay(1.0), 0.1),
        ):
            e = factory()
            exact = ExactDecayingSum(PolynomialDecay(1.0))
            e.add(1)
            exact.add(1)
            e.advance(10_000)
            exact.advance(10_000)
            assert e.query().contains(exact.query().value)

    def test_long_silence_then_burst(self):
        decay = SlidingWindowDecay(32)
        eh = ExponentialHistogram(32, 0.1)
        eh.advance(100_000)
        for _ in range(10):
            eh.add(1)
        assert eh.query().contains(10.0)

    def test_alternating_extreme_gaps(self):
        decay = PolynomialDecay(1.0)
        w = WBMH(decay, 0.2)
        exact = ExactDecayingSum(decay)
        for gap in (1, 1000, 1, 5000, 3):
            w.add(2.0)
            exact.add(2.0)
            w.advance(gap)
            exact.advance(gap)
        assert w.query().contains(exact.query().value)
