"""Integration tests for StreamFleet (the §1.1 many-streams scenario)."""

import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.exact import ExactDecayingSum
from repro.fleet import StreamFleet


class TestBasics:
    def test_lazy_keys_and_ratings(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        fleet.observe("a", 1.0)
        fleet.observe("b", 5.0)
        fleet.advance(10)
        assert len(fleet) == 2
        assert fleet.rating("b").value > fleet.rating("a").value
        assert fleet.rating("missing").value == 0.0

    def test_late_joining_key_gets_current_clock(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.1)
        fleet.observe("early", 1.0)
        fleet.advance(50)
        fleet.observe("late", 1.0)
        # Both engines share the fleet clock.
        assert fleet._engines["late"].time == fleet.time == 50

    def test_observe_at_time(self):
        fleet = StreamFleet(ExponentialDecay(0.1))
        fleet.observe("a", 1.0, when=5)
        fleet.observe("a", 1.0, when=9)
        assert fleet.time == 9
        with pytest.raises(TimeOrderError):
            fleet.observe("a", 1.0, when=3)

    def test_top_bottom(self):
        fleet = StreamFleet(PolynomialDecay(1.0))
        for key, count in (("x", 1), ("y", 3), ("z", 7)):
            for _ in range(count):
                fleet.observe(key, 1.0)
        fleet.advance(1)
        assert [k for k, _ in fleet.top(2)] == ["z", "y"]
        assert [k for k, _ in fleet.bottom(1)] == ["x"]
        with pytest.raises(InvalidParameterError):
            fleet.top(-1)

    def test_accuracy_against_exact(self):
        decay = PolynomialDecay(1.0)
        fleet = StreamFleet(decay, epsilon=0.1)
        exact = {k: ExactDecayingSum(decay) for k in ("a", "b")}
        rng = random.Random(2)
        for _ in range(500):
            for k in ("a", "b"):
                if rng.random() < 0.5:
                    v = rng.uniform(0.5, 2.0)
                    fleet.observe(k, v)
                    exact[k].add(v)
            fleet.advance(1)
            for e in exact.values():
                e.advance(1)
        for k in ("a", "b"):
            assert fleet.rating(k).contains(exact[k].query().value)


class TestEngineSelection:
    def test_wbmh_schedules_are_shared(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.2)
        fleet.observe("a", 1.0)
        fleet.observe("b", 1.0)
        a = fleet._engines["a"]
        b = fleet._engines["b"]
        assert a.schedule is b.schedule  # one object for the whole fleet

    def test_sliwin_and_expd_fleets(self):
        for decay in (SlidingWindowDecay(32), ExponentialDecay(0.1)):
            fleet = StreamFleet(decay, epsilon=0.2)
            fleet.observe("k", 1.0)
            fleet.advance(5)
            assert fleet.rating("k").value >= 0.0

    def test_custom_factory(self):
        decay = PolynomialDecay(1.0)
        fleet = StreamFleet(
            decay, engine_factory=lambda: ExactDecayingSum(decay)
        )
        fleet.observe("k", 2.0)
        fleet.advance(3)
        assert fleet.rating("k").value == pytest.approx(2.0 * decay.weight(3))


class TestStorageAccounting:
    def test_shared_bits_counted_once(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.2)
        for k in range(20):
            fleet.observe(k, 1.0)
        for _ in range(200):
            fleet.advance(1)
            for k in range(20):
                fleet.observe(k, 1.0)
        rep = fleet.storage_report()
        one = fleet._engines[0].storage_report()
        assert rep.shared_bits == one.shared_bits  # once, not 20x
        assert rep.per_stream_bits >= 20 * one.per_stream_bits * 0.5

    def test_per_key_bits(self):
        fleet = StreamFleet(PolynomialDecay(1.0), epsilon=0.2)
        fleet.observe("a", 1.0)
        fleet.advance(10)
        bits = fleet.per_key_bits()
        assert set(bits) == {"a"}
        assert bits["a"] > 0


class TestShardMerge:
    def test_absorb_shards(self):
        decay = ExponentialDecay(0.05)
        shard1 = StreamFleet(decay)
        shard2 = StreamFleet(decay)
        union = StreamFleet(decay)
        rng = random.Random(5)
        for _ in range(200):
            for key in ("a", "b", "c"):
                x = rng.random()
                y = rng.random()
                shard1.observe(key, x)
                shard2.observe(key, y)
                union.observe(key, x + y)
            shard1.advance(1)
            shard2.advance(1)
            union.advance(1)
        shard1.absorb(shard2)
        for key in ("a", "b", "c"):
            assert shard1.rating(key).value == pytest.approx(
                union.rating(key).value
            )

    def test_absorb_disjoint_keys(self):
        decay = ExponentialDecay(0.05)
        shard1 = StreamFleet(decay)
        shard2 = StreamFleet(decay)
        shard1.observe("only1", 1.0)
        shard2.observe("only2", 2.0)
        shard1.advance(1)
        shard2.advance(1)
        shard1.absorb(shard2)
        assert set(shard1.keys()) == {"only1", "only2"}

    def test_absorb_validation(self):
        fleet = StreamFleet(ExponentialDecay(0.1))
        with pytest.raises(InvalidParameterError):
            fleet.absorb(fleet)
        other = StreamFleet(ExponentialDecay(0.1))
        other.advance(1)
        with pytest.raises(TimeOrderError):
            fleet.absorb(other)


class TestObserveBatch:
    """Keyed batch ingestion: grouped per key, one clock advance per tick."""

    def _random_keyed_trace(self, n, seed):
        from repro.streams.io import KeyedItem

        rng = random.Random(seed)
        t = 0
        items = []
        for _ in range(n):
            t += rng.randrange(3)
            items.append(
                KeyedItem(rng.choice("abcd"), t, float(rng.randrange(4)))
            )
        return items

    @pytest.mark.parametrize(
        "decay",
        [ExponentialDecay(0.05), SlidingWindowDecay(64), PolynomialDecay(1.0)],
    )
    def test_bit_identical_to_sequential_observe(self, decay):
        items = self._random_keyed_trace(300, seed=5)
        sequential = StreamFleet(decay, 0.1)
        for item in items:
            sequential.observe(item.key, item.value, when=item.time)
        batched = StreamFleet(decay, 0.1)
        batched.observe_batch(items)
        assert batched.time == sequential.time
        assert set(batched.keys()) == set(sequential.keys())
        for key in sequential.keys():
            a = batched.rating(key)
            b = sequential.rating(key)
            assert (a.value, a.lower, a.upper) == (b.value, b.lower, b.upper)

    def test_rejects_time_regress(self):
        from repro.streams.io import KeyedItem

        fleet = StreamFleet(ExponentialDecay(0.1))
        fleet.advance(10)
        with pytest.raises(TimeOrderError):
            fleet.observe_batch([KeyedItem("a", 3, 1.0)])

    def test_new_keys_join_at_current_clock(self):
        from repro.streams.io import KeyedItem

        fleet = StreamFleet(SlidingWindowDecay(32), 0.1)
        fleet.observe_batch(
            [KeyedItem("old", 0, 1.0), KeyedItem("new", 20, 1.0)]
        )
        assert fleet.time == 20
        for engine in [fleet._engine_for("old"), fleet._engine_for("new")]:
            assert engine.time == 20
