"""Integration: the paper's storage hierarchy, measured.

Paper claims (sections 1-5):

    exact        Omega(N)
    EH / CEH     Theta(log^2 N)        (sliding windows, any decay)
    WBMH+POLYD   O(log N log log N)
    EWMA+EXPD    Theta(log N)
    Morris       O(log log N)          (non-decaying baseline)

This test drives all engines over the same growing stream and checks the
*ordering* and coarse growth shape of per-stream storage bits.
"""

import math

import pytest

from repro.benchkit.harness import growth_exponent
from repro.core.decay import ExponentialDecay, PolynomialDecay, SlidingWindowDecay
from repro.core.ewma import ExponentialSum
from repro.core.exact import ExactDecayingSum
from repro.counters.morris import MorrisCounter
from repro.histograms.ceh import CascadedEH
from repro.histograms.wbmh import WBMH

SIZES = [1 << 9, 1 << 11, 1 << 13]


def run_engine(engine, n):
    for _ in range(n):
        engine.add(1)
        engine.advance(1)
    return engine.storage_report().per_stream_bits


@pytest.fixture(scope="module")
def bits_by_engine():
    out = {}
    out["exact"] = [
        run_engine(ExactDecayingSum(PolynomialDecay(1.0)), n) for n in SIZES
    ]
    out["ceh"] = [run_engine(CascadedEH(PolynomialDecay(1.0), 0.1), n) for n in SIZES]
    out["wbmh"] = [
        run_engine(WBMH(PolynomialDecay(1.0), 0.1, horizon=n), n) for n in SIZES
    ]
    out["ewma"] = [run_engine(ExponentialSum(ExponentialDecay(0.05)), n) for n in SIZES]
    morris = []
    for n in SIZES:
        m = MorrisCounter(accuracy=0.2, seed=5)
        m.add(n)
        morris.append(m.storage_report().per_stream_bits)
    out["morris"] = morris
    return out


class TestHierarchy:
    def test_ordering_at_largest_n(self, bits_by_engine):
        b = {k: v[-1] for k, v in bits_by_engine.items()}
        assert b["morris"] < b["ewma"] < b["ceh"] < b["exact"]
        assert b["wbmh"] < b["exact"]

    def test_exact_is_linear(self, bits_by_engine):
        slope = growth_exponent(SIZES, bits_by_engine["exact"])
        assert slope == pytest.approx(1.0, abs=0.15)

    def test_histograms_are_polylog(self, bits_by_engine):
        for name in ("ceh", "wbmh"):
            slope = growth_exponent(SIZES, bits_by_engine[name])
            assert slope < 0.35, name  # log-ish growth in N

    def test_ceh_tracks_log_squared(self, bits_by_engine):
        ratios = [
            bits / math.log2(n) ** 2
            for bits, n in zip(bits_by_engine["ceh"], SIZES)
        ]
        # bits / log^2 N is roughly flat (within 2x across the sweep).
        assert max(ratios) / min(ratios) < 2.0

    def test_ewma_tracks_log(self, bits_by_engine):
        ratios = [
            bits / math.log2(n) for bits, n in zip(bits_by_engine["ewma"], SIZES)
        ]
        assert max(ratios) / min(ratios) < 2.0

    def test_wbmh_beats_ceh_asymptotic_trend(self, bits_by_engine):
        # The WBMH/CEH bit ratio must fall as N grows (the log N vs
        # log log N per-bucket gap).
        ratios = [
            w / c for w, c in zip(bits_by_engine["wbmh"], bits_by_engine["ceh"])
        ]
        assert ratios[-1] < ratios[0]


class TestSliwinMatchesCeh:
    def test_sliwin_is_the_hardest_decay(self):
        # Theorem 1's framing: any decay is answerable within the EH's
        # log^2 budget; SLIWIN itself sits at the top of the hierarchy.
        window = 1 << 10
        ceh = CascadedEH(SlidingWindowDecay(window), 0.1)
        for _ in range(1 << 12):
            ceh.add(1)
            ceh.advance(1)
        bits = ceh.storage_report().per_stream_bits
        assert bits < 40 * math.log2(window) ** 2
