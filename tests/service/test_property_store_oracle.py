"""Property test: ServiceStore == a dict of factory engines, bit for bit.

The oracle is deliberately naive: one :func:`make_decaying_sum` engine
per key, driven item by item (``advance_to`` then ``add``), with every
engine advanced in lock-step at every distinct global arrival time --
the same discipline :class:`~repro.fleet.StreamFleet` uses, and the one
that keeps per-key answers mergeable.  Lock-step matters at the last
ulp: register engines advance by multiplying a decay factor in, so
``advance(a); advance(b)`` and ``advance(a + b)`` differ in rounding;
the oracle must advance at the same checkpoints the store does or the
comparison would be approximate rather than exact.

The store is driven through ``observe_batch`` in arbitrary chunk sizes
(a different code path: grouped folds, ``add_batch`` per key), so the
property also pins batch folding to singleton semantics.  TTL eviction
and snapshot/restore round-trips are included in the state the oracle
tracks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decay import (
    DecayFunction,
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.estimate import Estimate
from repro.core.interfaces import DecayingSum, make_decaying_sum
from repro.service.store import ServiceStore
from repro.streams.io import KeyedItem

_EPSILON = 0.1

_KEYS = ("a", "b", "c", "d")

def _decay_for(name: str) -> DecayFunction:
    if name == "expd":
        return ExponentialDecay(0.05)
    if name == "sliwin":
        return SlidingWindowDecay(16)
    return PolynomialDecay(1.2)


#: (key index, time gap to the previous item, integer value).
_EVENTS = st.lists(
    st.tuples(
        st.integers(0, len(_KEYS) - 1),
        st.integers(0, 4),
        st.integers(0, 4),
    ),
    max_size=40,
)


def _items(events: list[tuple[int, int, int]]) -> list[KeyedItem]:
    now = 0
    items: list[KeyedItem] = []
    for key_index, gap, value in events:
        now += gap
        items.append(KeyedItem(_KEYS[key_index], now, float(value)))
    return items


def _triplet(estimate: Estimate) -> tuple[float, float, float]:
    return (estimate.value, estimate.lower, estimate.upper)


class DictOracle:
    """One factory engine per key, advanced in lock-step, TTL-swept."""

    def __init__(self, decay: DecayFunction, ttl: int | None) -> None:
        self.decay = decay
        self.ttl = ttl
        self.time = 0
        self.engines: dict[str, DecayingSum] = {}
        self.last_seen: dict[str, int] = {}
        self.evicted = 0

    def advance_to(self, when: int) -> None:
        steps = when - self.time
        if steps <= 0:
            return
        self.time = when
        for engine in self.engines.values():
            engine.advance(steps)
        if self.ttl is not None:
            expired = [
                key
                for key, last in self.last_seen.items()
                if last + self.ttl <= self.time
            ]
            for key in expired:
                del self.engines[key]
                del self.last_seen[key]
                self.evicted += 1

    def observe(self, item: KeyedItem) -> None:
        self.advance_to(item.time)
        engine = self.engines.get(item.key)
        if engine is None:
            engine = make_decaying_sum(self.decay, _EPSILON)
            if self.time:
                engine.advance(self.time)
            self.engines[item.key] = engine
        engine.add(item.value)
        self.last_seen[item.key] = self.time

    def assert_matches(self, store: ServiceStore) -> None:
        assert store.time == self.time
        assert store.keys() == sorted(self.engines)
        assert store.eviction.evicted_keys == self.evicted
        for key, engine in self.engines.items():
            assert _triplet(store.query(key)) == _triplet(engine.query()), (
                f"key {key!r} diverged from the oracle at t={self.time}"
            )


class TestStoreOracle:
    @settings(max_examples=50, deadline=None)
    @given(
        events=_EVENTS,
        decay_name=st.sampled_from(("expd", "sliwin", "polyd")),
        ttl=st.sampled_from((None, 4, 9)),
        chunk=st.integers(1, 7),
        tail=st.integers(0, 12),
    )
    def test_store_matches_dict_of_engines(
        self,
        events: list[tuple[int, int, int]],
        decay_name: str,
        ttl: int | None,
        chunk: int,
        tail: int,
    ) -> None:
        items = _items(events)
        store = ServiceStore(_decay_for(decay_name), _EPSILON, ttl=ttl)
        oracle = DictOracle(_decay_for(decay_name), ttl)
        for start in range(0, len(items), chunk):
            batch = items[start : start + chunk]
            store.observe_batch(batch)
            for item in batch:
                oracle.observe(item)
            oracle.assert_matches(store)
        if items:
            end = items[-1].time + tail
            store.advance_to(end)
            oracle.advance_to(end)
            oracle.assert_matches(store)

    @settings(max_examples=30, deadline=None)
    @given(
        events=_EVENTS,
        decay_name=st.sampled_from(("expd", "sliwin", "polyd")),
        ttl=st.sampled_from((None, 6)),
        split=st.integers(0, 40),
    )
    def test_snapshot_restore_continues_on_the_oracle(
        self,
        events: list[tuple[int, int, int]],
        decay_name: str,
        ttl: int | None,
        split: int,
    ) -> None:
        items = _items(events)
        split = min(split, len(items))
        store = ServiceStore(_decay_for(decay_name), _EPSILON, ttl=ttl)
        oracle = DictOracle(_decay_for(decay_name), ttl)
        store.observe_batch(items[:split])
        for item in items[:split]:
            oracle.observe(item)
        # Round-trip mid-stream; the rebuilt store must continue exactly.
        revived = ServiceStore.from_dict(store.to_dict())
        revived.observe_batch(items[split:])
        for item in items[split:]:
            oracle.observe(item)
        oracle.assert_matches(revived)
