"""The service benchmark: report schema, regress gate, and CLI.

``run_service_bench`` is exercised at a deliberately tiny N (this is a
correctness test of the harness and report plumbing; the real numbers
come from ``make bench-service``), and the regress gate is probed on
synthetic reports in both failure directions plus the schema-skip path.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Any

import pytest

from repro.benchkit.service import (
    SCALING_MIN_CPUS,
    SCALING_MIN_SPEEDUP,
    SCHEMA_VERSION,
    _percentile,
    _sample_note,
    check_service_regress,
    format_report,
    main,
    run_service_bench,
    validate_report,
    write_report,
)
from repro.core.errors import InvalidParameterError


def _scaling_rows(
    report: dict[str, Any], *, workers: int = 4, speedup: float = 3.0
) -> list[dict[str, Any]]:
    """Synthetic scaling section: workers=1 reference + one sharded row."""
    single = {
        "workers": 1,
        "sharded": False,
        "ingest": copy.deepcopy(report["ingest"]),
        "query": copy.deepcopy(report["query"]),
    }
    wide = copy.deepcopy(single)
    wide["workers"] = workers
    wide["sharded"] = True
    wide["ingest"]["items_per_sec"] = (
        report["ingest"]["items_per_sec"] * speedup
    )
    return [single, wide]


def _small_report() -> dict[str, Any]:
    return run_service_bench(300, 8, 20, seed=3)


@pytest.fixture(scope="module")
def report() -> dict[str, Any]:
    return _small_report()


class TestRun:
    def test_report_shape(self, report: dict[str, Any]) -> None:
        validate_report(report)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["ingest"]["items"] == 300
        assert report["ingest"]["items_per_sec"] > 0
        assert report["query"]["count"] == 20
        assert report["query"]["p99_ms"] >= report["query"]["p50_ms"]
        assert report["store"]["keys"] >= 1

    def test_write_and_format(
        self, report: dict[str, Any], tmp_path: Path
    ) -> None:
        out = write_report(report, tmp_path / "BENCH_service.json")
        assert json.loads(out.read_text()) == report
        text = format_report(report)
        assert "items/sec" in text
        assert "p99 ms" in text

    def test_query_count_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            run_service_bench(10, 2, 0)


class TestValidation:
    def test_rejects_wrong_schema_and_missing_keys(
        self, report: dict[str, Any]
    ) -> None:
        with pytest.raises(InvalidParameterError):
            validate_report({**report, "schema_version": 99})
        broken = copy.deepcopy(report)
        del broken["query"]
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_rejects_inconsistent_latencies(
        self, report: dict[str, Any]
    ) -> None:
        broken = copy.deepcopy(report)
        broken["query"]["p99_ms"] = broken["query"]["p50_ms"] / 2 - 1e-9
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_rejects_nonpositive_throughput(
        self, report: dict[str, Any]
    ) -> None:
        broken = copy.deepcopy(report)
        broken["ingest"]["items_per_sec"] = 0.0
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_percentile_edges(self) -> None:
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        with pytest.raises(InvalidParameterError):
            _percentile([], 0.5)

    def test_percentile_interpolates(self) -> None:
        # v1 nearest-rank made p99 of any tiny sample the max; linear
        # interpolation places interior quantiles between order stats.
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert _percentile([0.0, 10.0], 0.99) == pytest.approx(9.9)
        assert _percentile([5.0], 0.99) == 5.0
        with pytest.raises(InvalidParameterError):
            _percentile([1.0], 1.5)

    def test_sample_note_flags_unresolvable_tails(self) -> None:
        assert _sample_note(100, 0.99) is None
        note = _sample_note(20, 0.99)
        assert note is not None and "100" in note
        assert _sample_note(2, 0.5) is None
        with pytest.raises(InvalidParameterError):
            _sample_note(0)

    def test_small_run_carries_query_note(
        self, report: dict[str, Any]
    ) -> None:
        # The module fixture times only 20 queries: far too few for p99.
        assert "dominated by the maximum" in report["query"]["note"]
        assert "note" in format_report(report)

    def test_cpu_count_stamped(self, report: dict[str, Any]) -> None:
        assert isinstance(report["cpu_count"], int)
        assert report["cpu_count"] >= 1
        broken = copy.deepcopy(report)
        broken["cpu_count"] = 0
        with pytest.raises(InvalidParameterError):
            validate_report(broken)
        del broken["cpu_count"]
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_scaling_section_validated(self, report: dict[str, Any]) -> None:
        with_scaling = copy.deepcopy(report)
        with_scaling["scaling"] = _scaling_rows(report)
        validate_report(with_scaling)
        assert "scaling w=4" in format_report(with_scaling)
        no_reference = copy.deepcopy(with_scaling)
        no_reference["scaling"] = no_reference["scaling"][1:]
        with pytest.raises(InvalidParameterError):
            validate_report(no_reference)
        duplicate = copy.deepcopy(with_scaling)
        duplicate["scaling"].append(duplicate["scaling"][1])
        with pytest.raises(InvalidParameterError):
            validate_report(duplicate)
        empty = copy.deepcopy(with_scaling)
        empty["scaling"] = []
        with pytest.raises(InvalidParameterError):
            validate_report(empty)


class TestGate:
    def test_identical_reports_pass(self, report: dict[str, Any]) -> None:
        passed, message = check_service_regress(report, report)
        assert passed, message
        assert "OK" in message

    def test_ingest_collapse_fails(self, report: dict[str, Any]) -> None:
        slow = copy.deepcopy(report)
        slow["ingest"]["items_per_sec"] = (
            report["ingest"]["items_per_sec"] * 0.5
        )
        passed, message = check_service_regress(report, slow)
        assert not passed
        assert "ingest throughput" in message

    def test_p99_inflation_fails(self, report: dict[str, Any]) -> None:
        slow = copy.deepcopy(report)
        slow["query"]["p99_ms"] = report["query"]["p99_ms"] * 10
        passed, message = check_service_regress(report, slow)
        assert not passed
        assert "query p99" in message

    def test_schema_mismatch_skips(self, report: dict[str, Any]) -> None:
        stale = {**copy.deepcopy(report), "schema_version": 0}
        passed, message = check_service_regress(stale, report)
        assert passed
        assert "regenerate" in message

    def test_threshold_validated(self, report: dict[str, Any]) -> None:
        with pytest.raises(InvalidParameterError):
            check_service_regress(report, report, threshold=0.0)


class TestScalingGate:
    """The scaling clause rides only on the fresh report's scaling rows."""

    def test_skips_without_scaling_section(
        self, report: dict[str, Any]
    ) -> None:
        passed, message = check_service_regress(report, report)
        assert passed
        assert "scaling gate skipped" in message
        assert "no scaling section" in message

    def test_skips_on_starved_runner(self, report: dict[str, Any]) -> None:
        fresh = copy.deepcopy(report)
        fresh["scaling"] = _scaling_rows(report)
        fresh["cpu_count"] = SCALING_MIN_CPUS - 1
        passed, message = check_service_regress(report, fresh)
        assert passed
        assert "scaling gate skipped" in message
        assert "cpu(s)" in message

    def test_skips_without_wide_row(self, report: dict[str, Any]) -> None:
        fresh = copy.deepcopy(report)
        rows = _scaling_rows(report, workers=2)
        fresh["scaling"] = rows
        fresh["cpu_count"] = SCALING_MIN_CPUS
        passed, message = check_service_regress(report, fresh)
        assert passed
        assert "scaling gate skipped" in message

    def test_enforces_speedup_floor(self, report: dict[str, Any]) -> None:
        fresh = copy.deepcopy(report)
        fresh["scaling"] = _scaling_rows(
            report, speedup=SCALING_MIN_SPEEDUP * 0.5
        )
        fresh["cpu_count"] = SCALING_MIN_CPUS
        passed, message = check_service_regress(report, fresh)
        assert not passed
        assert "speedup" in message

    def test_enforces_p99_ceiling(self, report: dict[str, Any]) -> None:
        fresh = copy.deepcopy(report)
        rows = _scaling_rows(report)
        rows[1]["query"]["p99_ms"] = rows[0]["query"]["p99_ms"] * 10
        fresh["scaling"] = rows
        fresh["cpu_count"] = SCALING_MIN_CPUS
        passed, message = check_service_regress(report, fresh)
        assert not passed
        assert "p99" in message

    def test_healthy_scaling_passes(self, report: dict[str, Any]) -> None:
        fresh = copy.deepcopy(report)
        fresh["scaling"] = _scaling_rows(report)
        fresh["cpu_count"] = SCALING_MIN_CPUS
        passed, message = check_service_regress(report, fresh)
        assert passed, message
        assert "scaling gate OK" in message


class TestCli:
    def test_measure_mode_writes_report(self, tmp_path: Path) -> None:
        out = tmp_path / "BENCH_service.json"
        status = main(
            ["--items", "200", "--keys", "4", "--queries", "15",
             "--seed", "3", "--out", str(out)]
        )
        assert status == 0
        validate_report(json.loads(out.read_text()))

    def test_compare_mode_exit_codes(
        self, report: dict[str, Any], tmp_path: Path
    ) -> None:
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(report))
        fresh.write_text(json.dumps(report))
        assert main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 0
        slow = copy.deepcopy(report)
        slow["ingest"]["items_per_sec"] = (
            report["ingest"]["items_per_sec"] * 0.1
        )
        fresh.write_text(json.dumps(slow))
        assert main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 1

    def test_baseline_requires_fresh(self, tmp_path: Path) -> None:
        with pytest.raises(SystemExit):
            main(["--baseline", str(tmp_path / "b.json")])

    def test_scaling_mode_records_sharded_rows(self, tmp_path: Path) -> None:
        out = tmp_path / "BENCH_service.json"
        status = main(
            ["--items", "150", "--keys", "4", "--queries", "10",
             "--seed", "3", "--scaling", "--scaling-workers", "2",
             "--out", str(out)]
        )
        assert status == 0
        report = json.loads(out.read_text())
        validate_report(report)
        rows = {row["workers"]: row for row in report["scaling"]}
        assert set(rows) == {1, 2}
        assert not rows[1]["sharded"] and rows[2]["sharded"]
        # Same workload through both fronts: identical admitted counts.
        assert (
            rows[2]["ingest"]["items"] == rows[1]["ingest"]["items"] == 150
        )

    def test_scaling_workers_parse_errors(self) -> None:
        with pytest.raises(SystemExit):
            main(["--scaling", "--scaling-workers", "two"])
        with pytest.raises(InvalidParameterError):
            run_service_bench(50, 2, 5, scaling_workers=[1])
        with pytest.raises(InvalidParameterError):
            run_service_bench(50, 2, 5, scaling_workers=[2, 2])
