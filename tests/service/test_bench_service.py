"""The service benchmark: report schema, regress gate, and CLI.

``run_service_bench`` is exercised at a deliberately tiny N (this is a
correctness test of the harness and report plumbing; the real numbers
come from ``make bench-service``), and the regress gate is probed on
synthetic reports in both failure directions plus the schema-skip path.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path
from typing import Any

import pytest

from repro.benchkit.service import (
    SCHEMA_VERSION,
    _percentile,
    check_service_regress,
    format_report,
    main,
    run_service_bench,
    validate_report,
    write_report,
)
from repro.core.errors import InvalidParameterError


def _small_report() -> dict[str, Any]:
    return run_service_bench(300, 8, 20, seed=3)


@pytest.fixture(scope="module")
def report() -> dict[str, Any]:
    return _small_report()


class TestRun:
    def test_report_shape(self, report: dict[str, Any]) -> None:
        validate_report(report)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["ingest"]["items"] == 300
        assert report["ingest"]["items_per_sec"] > 0
        assert report["query"]["count"] == 20
        assert report["query"]["p99_ms"] >= report["query"]["p50_ms"]
        assert report["store"]["keys"] >= 1

    def test_write_and_format(
        self, report: dict[str, Any], tmp_path: Path
    ) -> None:
        out = write_report(report, tmp_path / "BENCH_service.json")
        assert json.loads(out.read_text()) == report
        text = format_report(report)
        assert "items/sec" in text
        assert "p99 ms" in text

    def test_query_count_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            run_service_bench(10, 2, 0)


class TestValidation:
    def test_rejects_wrong_schema_and_missing_keys(
        self, report: dict[str, Any]
    ) -> None:
        with pytest.raises(InvalidParameterError):
            validate_report({**report, "schema_version": 99})
        broken = copy.deepcopy(report)
        del broken["query"]
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_rejects_inconsistent_latencies(
        self, report: dict[str, Any]
    ) -> None:
        broken = copy.deepcopy(report)
        broken["query"]["p99_ms"] = broken["query"]["p50_ms"] / 2 - 1e-9
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_rejects_nonpositive_throughput(
        self, report: dict[str, Any]
    ) -> None:
        broken = copy.deepcopy(report)
        broken["ingest"]["items_per_sec"] = 0.0
        with pytest.raises(InvalidParameterError):
            validate_report(broken)

    def test_percentile_edges(self) -> None:
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        with pytest.raises(InvalidParameterError):
            _percentile([], 0.5)


class TestGate:
    def test_identical_reports_pass(self, report: dict[str, Any]) -> None:
        passed, message = check_service_regress(report, report)
        assert passed, message
        assert "OK" in message

    def test_ingest_collapse_fails(self, report: dict[str, Any]) -> None:
        slow = copy.deepcopy(report)
        slow["ingest"]["items_per_sec"] = (
            report["ingest"]["items_per_sec"] * 0.5
        )
        passed, message = check_service_regress(report, slow)
        assert not passed
        assert "ingest throughput" in message

    def test_p99_inflation_fails(self, report: dict[str, Any]) -> None:
        slow = copy.deepcopy(report)
        slow["query"]["p99_ms"] = report["query"]["p99_ms"] * 10
        passed, message = check_service_regress(report, slow)
        assert not passed
        assert "query p99" in message

    def test_schema_mismatch_skips(self, report: dict[str, Any]) -> None:
        stale = {**copy.deepcopy(report), "schema_version": 0}
        passed, message = check_service_regress(stale, report)
        assert passed
        assert "regenerate" in message

    def test_threshold_validated(self, report: dict[str, Any]) -> None:
        with pytest.raises(InvalidParameterError):
            check_service_regress(report, report, threshold=0.0)


class TestCli:
    def test_measure_mode_writes_report(self, tmp_path: Path) -> None:
        out = tmp_path / "BENCH_service.json"
        status = main(
            ["--items", "200", "--keys", "4", "--queries", "15",
             "--seed", "3", "--out", str(out)]
        )
        assert status == 0
        validate_report(json.loads(out.read_text()))

    def test_compare_mode_exit_codes(
        self, report: dict[str, Any], tmp_path: Path
    ) -> None:
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(report))
        fresh.write_text(json.dumps(report))
        assert main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 0
        slow = copy.deepcopy(report)
        slow["ingest"]["items_per_sec"] = (
            report["ingest"]["items_per_sec"] * 0.1
        )
        fresh.write_text(json.dumps(slow))
        assert main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        ) == 1

    def test_baseline_requires_fresh(self, tmp_path: Path) -> None:
        with pytest.raises(SystemExit):
            main(["--baseline", str(tmp_path / "b.json")])
