"""The differential service-vs-engine harness: the PR's headline contract.

Every conformance fuzz trace replayed *through the live daemon* -- real
asyncio queue, real HTTP socket, JSON on the wire -- must produce an
:class:`~repro.core.estimate.Estimate` bit-identical to the same trace
driven directly into the factory engine via ``ingest``.  Not close:
identical, every float of the certified triplet, for every engine family
and every fuzz seed.  Any ulp of drift means the service layer computed
something other than the paper's aggregate.

The store under each cell holds a single key, so the shared store clock
advances exactly when the direct engine's clock does (multi-key stores
advance in lock-step at every distinct global arrival time, which is a
different -- equally deterministic -- advance pattern; the keyed-oracle
property test covers that regime).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.conformance.engines import default_specs
from repro.conformance.fuzz import trace_for_seed
from repro.service.api import WSClient, http_request
from repro.service.loadgen import ServiceHarness

#: Engine families replayed through the live daemon.  Seven cells cover
#: every storage architecture the factory routes to: the EXPD register,
#: both forward-decay kinds, the sliding-window EH, WBMH, the cascaded
#: EH, and the polyexponential pipeline.
CELLS = (
    "expd",
    "fwd-exp",
    "fwd-poly",
    "sliwin",
    "polyd-wbmh",
    "linear-ceh",
    "polyexp",
)

N_SEEDS = 20


async def _replay_through_daemon(cell: str, seed: int) -> None:
    spec = default_specs()[cell]
    trace = trace_for_seed(seed)
    direct = spec.build()
    direct.ingest(trace.stream_items(), until=trace.end_time)
    expected = direct.query()

    async with ServiceHarness(spec.decay, spec.epsilon) as harness:
        rows = [
            {"key": "cell", "time": t, "value": v} for t, v in trace.items
        ]
        # Three HTTP batches: the daemon's queue and the store's grouped
        # folds must be batch-boundary-neutral, exactly like `ingest`.
        cut = max(1, len(rows) // 3)
        for chunk in (rows[:cut], rows[cut : 2 * cut], rows[2 * cut :]):
            if chunk:
                status, body = await http_request(
                    harness.host,
                    harness.port,
                    "POST",
                    "/ingest",
                    {"items": chunk},
                )
                assert status == 200, body
        status, body = await http_request(
            harness.host,
            harness.port,
            "POST",
            "/ingest",
            {"items": [], "until": trace.end_time},
        )
        assert status == 200, body
        assert body["time"] == trace.end_time

        status, body = await http_request(
            harness.host, harness.port, "GET", "/query/cell"
        )
        if trace.n_items == 0:
            # No arrivals ever created the key; the direct engine agrees
            # there is nothing there.
            assert status == 404
            assert expected.value == 0.0
        else:
            assert status == 200, body
            assert body["time"] == direct.time == trace.end_time
            assert (body["value"], body["lower"], body["upper"]) == (
                expected.value,
                expected.lower,
                expected.upper,
            ), f"{cell} seed {seed}: service diverged from direct engine"

        if seed % 7 == 3 and trace.n_items:
            ws = await WSClient.connect(harness.host, harness.port)
            try:
                reply = await ws.request({"op": "query", "key": "cell"})
            finally:
                await ws.close()
            assert (reply["value"], reply["lower"], reply["upper"]) == (
                expected.value,
                expected.lower,
                expected.upper,
            ), f"{cell} seed {seed}: websocket diverged from direct engine"

        assert harness.daemon.items_folded == trace.n_items
        assert harness.daemon.fold_errors == 0


async def _run_cell(cell: str) -> None:
    for seed in range(N_SEEDS):
        await _replay_through_daemon(cell, seed)


class TestDifferential:
    @pytest.mark.parametrize("cell", CELLS)
    def test_cell_bit_identical_through_live_daemon(self, cell: str) -> None:
        asyncio.run(_run_cell(cell))
