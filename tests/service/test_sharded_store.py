"""Unit tests for :class:`repro.service.sharded.ShardedServiceStore`.

The differential suite (test_sharded_differential.py) proves the
multi-process front computes the same numbers as the single store; this
file pins the machinery itself: crc32 routing, the lock-step shared
clock across workers, the batched IPC plane's journaling/checkpoint
lifecycle, snapshot portability in both directions (sharded <-> plain,
including worker-count changes), the router-owned lateness buffer, and
the StoreFront seam the daemon/server/adapter consume.
"""

from __future__ import annotations

import pytest

from repro.core.decay import ExponentialDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.estimate import Estimate
from repro.core.interfaces import make_decaying_sum
from repro.core.timeorder import OutOfOrderPolicy
from repro.parallel.sharded import shard_of
from repro.service.sharded import ShardedServiceStore, flatten_snapshot
from repro.service.store import ServiceStore, StoreFront
from repro.streams.io import KeyedItem


def _triplet(estimate: Estimate) -> tuple[float, float, float]:
    return (estimate.value, estimate.lower, estimate.upper)


@pytest.fixture()
def store():
    front = ShardedServiceStore(ExponentialDecay(0.05), 0.1, workers=3)
    yield front
    front.close()


class TestConstruction:
    def test_parameters_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            ShardedServiceStore(ExponentialDecay(0.05), 0.0)
        with pytest.raises(InvalidParameterError):
            ShardedServiceStore(ExponentialDecay(0.05), workers=0)
        with pytest.raises(InvalidParameterError):
            ShardedServiceStore(ExponentialDecay(0.05), ttl=0)
        with pytest.raises(InvalidParameterError):
            ShardedServiceStore(ExponentialDecay(0.05), checkpoint_every=0)

    def test_satisfies_store_front_protocol(self, store) -> None:
        assert isinstance(store, StoreFront)
        assert isinstance(ServiceStore(ExponentialDecay(0.05)), StoreFront)

    def test_spawns_one_process_per_worker(self, store) -> None:
        pids = store.worker_pids()
        assert len(pids) == 3
        assert len(set(pids)) == 3

    def test_close_is_idempotent(self) -> None:
        front = ShardedServiceStore(ExponentialDecay(0.05), 0.1, workers=2)
        front.close()
        front.close()
        with pytest.raises(InvalidParameterError):
            front.observe("k", 1.0)

    def test_context_manager_closes(self) -> None:
        with ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=2
        ) as front:
            front.observe("k", 2.0)
            assert "k" in front
        # Memoized reads of "k" would still hit the router cache; a
        # fresh key must cross the (closed) IPC plane and fail loudly.
        with pytest.raises(InvalidParameterError):
            front.query("other")


class TestRouting:
    def test_keys_land_on_their_crc32_shard(self, store) -> None:
        keys = [f"key{i}" for i in range(20)]
        for key in keys:
            store.observe(key, 1.0)
        per_worker = store.stats()["per_worker"]
        for key in keys:
            owner = shard_of(key, 3)
            # The owning worker's key census must include this key.
            assert per_worker[owner]["keys"] >= 1
        assert sum(w["keys"] for w in per_worker) == len(keys)
        assert sorted(store.keys()) == sorted(keys)
        assert len(store) == 20

    def test_workers_share_one_lockstep_clock(self, store) -> None:
        store.observe("a", 1.0, when=4)
        store.observe("b", 1.0, when=9)
        assert store.time == 9
        # Every worker's shard store sits at the same clock, even the
        # one(s) holding neither key.
        for worker in store.stats()["per_worker"]:
            assert worker["time"] == 9

    def test_clock_validation(self, store) -> None:
        store.advance_to(5)
        with pytest.raises(InvalidParameterError):
            store.advance(-1)
        with pytest.raises(TimeOrderError):
            store.advance_to(3)

    def test_missing_key_raises_unless_created(self, store) -> None:
        with pytest.raises(KeyError):
            store.query("ghost")
        created = store.query("ghost", create=True)
        assert created.value == 0.0
        assert "ghost" in store


class TestReadsAndWrites:
    def test_observe_values_folds_at_current_clock(self, store) -> None:
        store.advance_to(3)
        store.observe_values("k", [1.0, 2.0, 3.0])
        twin = ServiceStore(ExponentialDecay(0.05), 0.1)
        twin.advance_to(3)
        twin.observe_values("k", [1.0, 2.0, 3.0])
        assert _triplet(store.query("k")) == _triplet(twin.query("k"))
        assert store.stats()["ingested_weight"] == 6.0

    def test_query_total_spans_workers(self, store) -> None:
        for index in range(9):
            store.observe(f"key{index}", 1.0)
        total = store.query_total()
        assert total.lower <= total.value <= total.upper
        assert total.value == pytest.approx(9.0)
        with ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=1
        ) as empty:
            assert _triplet(empty.query_total()) == _triplet(
                Estimate.exact(0.0)
            )

    def test_merge_into_and_export_engine(self, store) -> None:
        other = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        other.add(5.0)
        store.observe("k", 1.0)
        store.merge_into("k", other)
        exported = store.export_engine("k")
        assert _triplet(exported.query()) == _triplet(store.query("k"))
        assert exported.query().value == pytest.approx(6.0)

    def test_key_stats_and_reports(self, store) -> None:
        store.observe("a", 1.0)
        store.observe("b", 2.0, when=3)
        stats = store.key_stats()
        assert set(stats) == {"a", "b"}
        assert stats["b"]["last_seen"] == 3
        report = store.storage_report()
        assert report.total_bits > 0
        key_report = store.key_storage_report("a")
        assert key_report.total_bits > 0

    def test_buffer_policy_is_router_owned(self) -> None:
        policy = OutOfOrderPolicy.buffered(4)
        front = ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=2, policy=policy
        )
        try:
            twin = ServiceStore(
                ExponentialDecay(0.05), 0.1,
                policy=OutOfOrderPolicy.buffered(4),
            )
            items = [
                KeyedItem("a", 6, 1.0),
                KeyedItem("b", 4, 2.0),  # late: buffered at the router
                KeyedItem("a", 8, 1.5),
            ]
            front.observe_batch(items)
            twin.observe_batch(items)
            assert front.stats()["buffered"] == twin.stats()["buffered"] >= 1
            front.flush()
            twin.flush()
            assert front.stats()["buffered"] == 0
            for key in ("a", "b"):
                assert _triplet(front.query(key)) == _triplet(twin.query(key))
            with pytest.raises(InvalidParameterError):
                front.observe_batch(
                    [KeyedItem("a", 9, 1.0)],
                    policy=OutOfOrderPolicy.buffered(2),
                )
        finally:
            front.close()


class TestMemoization:
    def test_repeat_queries_hit_the_router_memo(self, store) -> None:
        store.observe("k", 2.0)
        first = store.query("k")
        again = store.query("k")
        assert _triplet(first) == _triplet(again)
        # A write invalidates; an advance re-keys the memo.
        store.observe("k", 1.0)
        assert store.query("k").value != first.value
        before = _triplet(store.query("k"))
        store.advance(2)
        assert _triplet(store.query("k")) != before

    def test_memoized_matches_unmemoized(self) -> None:
        items = [
            KeyedItem(f"k{i % 4}", t, float(i % 3) + 0.5)
            for i, t in enumerate(range(0, 40, 2))
        ]
        memo = ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=2, memoize=True
        )
        plain = ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=2, memoize=False
        )
        try:
            for front in (memo, plain):
                front.observe_batch(items[:10])
                for key in front.keys():
                    front.query(key)
                front.observe_batch(items[10:], until=50)
            for key in memo.keys():
                assert _triplet(memo.query(key)) == _triplet(plain.query(key))
            assert _triplet(memo.query_total()) == _triplet(
                plain.query_total()
            )
        finally:
            memo.close()
            plain.close()


class TestSnapshot:
    @staticmethod
    def _seed(front) -> None:
        items = [
            KeyedItem(f"k{i % 5}", t, 1.0 + (i % 3))
            for i, t in enumerate(range(0, 30, 3))
        ]
        front.observe_batch(items, until=32)

    def test_round_trip_preserves_queries(self, store) -> None:
        self._seed(store)
        data = store.to_dict()
        assert data["kind"] == "sharded-service-store"
        clone = ShardedServiceStore.from_dict(data)
        try:
            assert clone.workers == store.workers
            assert clone.time == store.time
            for key in store.keys():
                assert _triplet(clone.query(key)) == _triplet(
                    store.query(key)
                )
            assert clone.stats()["ingested_weight"] == (
                store.stats()["ingested_weight"]
            )
        finally:
            clone.close()

    def test_restore_across_worker_counts(self, store) -> None:
        self._seed(store)
        wider = ShardedServiceStore.from_dict(store.to_dict(), workers=5)
        try:
            assert wider.workers == 5
            for key in store.keys():
                assert _triplet(wider.query(key)) == _triplet(
                    store.query(key)
                )
        finally:
            wider.close()

    def test_flatten_to_plain_service_store(self, store) -> None:
        self._seed(store)
        plain_data = flatten_snapshot(store.to_dict())
        assert plain_data["kind"] == "service-store"
        plain = ServiceStore.from_dict(plain_data)
        assert plain.time == store.time
        for key in store.keys():
            assert _triplet(plain.query(key)) == _triplet(store.query(key))
        stats = plain.stats()
        assert stats["ingested_weight"] == store.stats()["ingested_weight"]

    def test_restore_accepts_plain_snapshot(self, store) -> None:
        twin = ServiceStore(ExponentialDecay(0.05), 0.1)
        self._seed(twin)
        store.restore(twin.to_dict())
        assert store.time == twin.time
        for key in twin.keys():
            assert _triplet(store.query(key)) == _triplet(twin.query(key))

    def test_snapshot_doubles_as_checkpoint(self, store) -> None:
        self._seed(store)
        store.to_dict()
        # After a snapshot every journal is truncated onto a checkpoint.
        for shard in store._shards:
            assert shard.journal == []
            assert shard.checkpoint is not None
