"""Sharded-vs-single differential: the multi-process front changes nothing.

The acceptance contract of the sharded service PR: replaying the
differential service suite (same seven engine-family cells, same fuzz
seeds) through a 3-worker :class:`ShardedServiceStore` must be
bit-identical to the single-process :class:`ServiceStore` -- and, for
single-key traces, to the direct factory engine -- on every per-key
certified triplet.  Cross-shard ``query_total`` folds worker summaries
through engine ``merge``, so its guarantee is the CL008 one: a certified
interval containing the true total, with the point value reproducing the
single-store fold up to float summation order.

The crash clause: SIGKILL a worker mid-run and keep feeding.  The router
must revive it from checkpoint + journal replay and reconcile the
ledgers without losing a single unit of admitted weight.
"""

from __future__ import annotations

import os
import signal
import time as _time

import pytest

from repro.conformance.engines import default_specs
from repro.conformance.fuzz import trace_for_seed
from repro.core.decay import ExponentialDecay
from repro.service.loadgen import keyed_trace
from repro.streams.io import KeyedItem
from repro.service.sharded import ShardedServiceStore
from repro.service.store import ServiceStore

#: Same seven storage architectures as tests/service/test_differential.py.
CELLS = (
    "expd",
    "fwd-exp",
    "fwd-poly",
    "sliwin",
    "polyd-wbmh",
    "linear-ceh",
    "polyexp",
)

N_SEEDS = 5

WORKERS = 3


def _replay_single_key(cell: str, seed: int) -> None:
    spec = default_specs()[cell]
    trace = trace_for_seed(seed)
    direct = spec.build()
    direct.ingest(trace.stream_items(), until=trace.end_time)
    expected = direct.query()

    rows = [KeyedItem("cell", t, v) for t, v in trace.items]
    single = ServiceStore(spec.decay, spec.epsilon)
    single.observe_batch(rows, until=trace.end_time)
    sharded = ShardedServiceStore(spec.decay, spec.epsilon, workers=WORKERS)
    try:
        sharded.observe_batch(rows, until=trace.end_time)
        if trace.n_items == 0:
            with pytest.raises(KeyError):
                sharded.query("cell")
            assert expected.value == 0.0
            return
        got = sharded.query("cell")
        want = single.query("cell")
        assert (got.value, got.lower, got.upper) == (
            want.value,
            want.lower,
            want.upper,
        ), f"{cell} seed {seed}: sharded diverged from single store"
        assert (got.value, got.lower, got.upper) == (
            expected.value,
            expected.lower,
            expected.upper,
        ), f"{cell} seed {seed}: sharded diverged from direct engine"
        assert sharded.time == single.time == direct.time
    finally:
        sharded.close()


class TestSingleKeyCells:
    @pytest.mark.parametrize("cell", CELLS)
    def test_cell_bit_identical_across_ipc_plane(self, cell: str) -> None:
        for seed in range(N_SEEDS):
            _replay_single_key(cell, seed)


def _pair(cell: str, ttl: int | None = None):
    spec = default_specs()[cell]
    single = ServiceStore(spec.decay, spec.epsilon, ttl=ttl)
    sharded = ShardedServiceStore(
        spec.decay, spec.epsilon, workers=WORKERS, ttl=ttl
    )
    return single, sharded


def _assert_stores_agree(
    single: ServiceStore, sharded: ShardedServiceStore
) -> None:
    assert sharded.time == single.time
    assert sorted(sharded.keys()) == sorted(single.keys())
    for key in single.keys():
        want = single.query(key)
        got = sharded.query(key)
        assert (got.value, got.lower, got.upper) == (
            want.value,
            want.lower,
            want.upper,
        ), f"key {key}: sharded diverged from single store"
    single_stats = single.stats()
    sharded_stats = sharded.stats()
    # Admission ledgers are router-owned and folded in the exact
    # single-store float order: identical, not merely close.
    for field in ("keys", "ingested_items", "ingested_weight",
                  "evicted_keys", "dropped_count", "buffered"):
        assert sharded_stats[field] == single_stats[field], field
    # Evicted weight sums per-worker floats in shard order.
    assert sharded_stats["evicted_weight"] == pytest.approx(
        single_stats["evicted_weight"], rel=1e-12, abs=1e-12
    )
    want_total = single.query_total()
    got_total = sharded.query_total()
    assert got_total.lower <= got_total.upper
    # CL008 composition: the fan-in fold reproduces the single-store
    # total up to float summation order, with bounds still certified.
    assert got_total.value == pytest.approx(want_total.value, rel=1e-9)
    assert got_total.lower <= want_total.value * (1 + 1e-9) + 1e-9
    assert want_total.value <= got_total.upper * (1 + 1e-9) + 1e-9


class TestMultiKeyWorkload:
    @pytest.mark.parametrize("cell", ("expd", "fwd-exp", "sliwin"))
    def test_keyed_workload_agrees(self, cell: str) -> None:
        items = keyed_trace(400, 8, seed=11)
        if cell == "sliwin":
            # The sliding-window EH counts integer arrivals.
            items = [
                KeyedItem(item.key, item.time, float(int(item.value) + 1))
                for item in items
            ]
        single, sharded = _pair(cell)
        try:
            single.observe_batch(items, until=items[-1].time + 3)
            sharded.observe_batch(items, until=items[-1].time + 3)
            _assert_stores_agree(single, sharded)
        finally:
            sharded.close()

    def test_ttl_eviction_agrees(self) -> None:
        items = keyed_trace(300, 6, seed=4)
        single, sharded = _pair("expd", ttl=5)
        try:
            single.observe_batch(items, until=items[-1].time + 40)
            sharded.observe_batch(items, until=items[-1].time + 40)
            # The long quiet tail expires every key on both fronts.
            assert single.stats()["evicted_keys"] > 0
            _assert_stores_agree(single, sharded)
        finally:
            sharded.close()


class TestWorkerCrash:
    def test_kill_worker_mid_run_loses_no_admitted_weight(self) -> None:
        items = keyed_trace(500, 8, seed=9)
        cut = len(items) // 2
        single = ServiceStore(ExponentialDecay(0.05), 0.1)
        sharded = ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=WORKERS, checkpoint_every=8
        )
        try:
            single.observe_batch(items[:cut])
            sharded.observe_batch(items[:cut])
            victim = sharded.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            deadline = _time.monotonic() + 10.0
            while _time.monotonic() < deadline:
                try:
                    os.kill(victim, 0)
                except ProcessLookupError:
                    break
                _time.sleep(0.05)
            single.observe_batch(items[cut:], until=items[-1].time + 2)
            sharded.observe_batch(items[cut:], until=items[-1].time + 2)
            assert sharded.revived_workers >= 1
            assert victim not in sharded.worker_pids()
            _assert_stores_agree(single, sharded)
            # The reconciliation clause, stated directly: every admitted
            # unit of weight survived the crash.
            assert (
                sharded.stats()["ingested_weight"]
                == single.stats()["ingested_weight"]
                == pytest.approx(sum(item.value for item in items))
            )
        finally:
            sharded.close()

    def test_kill_worker_between_queries_replays_reads(self) -> None:
        items = keyed_trace(200, 5, seed=2)
        single = ServiceStore(ExponentialDecay(0.05), 0.1)
        sharded = ShardedServiceStore(
            ExponentialDecay(0.05), 0.1, workers=WORKERS, checkpoint_every=4
        )
        try:
            single.observe_batch(items)
            sharded.observe_batch(items)
            for victim in list(sharded.worker_pids()):
                os.kill(victim, signal.SIGKILL)
            # Every worker is dead: the next reads must revive all three
            # from their checkpoints + journals and still agree.
            _assert_stores_agree(single, sharded)
            assert sharded.revived_workers >= WORKERS
        finally:
            sharded.close()
