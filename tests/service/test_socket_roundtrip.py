"""Integration: the full stack over real sockets, in asyncio debug mode.

Everything here runs against live TCP connections -- the HTTP query
surface, the WebSocket endpoint, and the JSON-lines ingestion feed --
and every test asserts the loop is left clean: no leaked tasks, no
half-open servers.  Backpressure behavior (block / drop / shed) is
exercised against a deliberately tiny queue with no consumer running,
so the policies face a genuinely full queue.
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable

from repro.core.decay import ExponentialDecay
from repro.service.api import WSClient, http_request
from repro.service.daemon import BackpressurePolicy, IngestDaemon
from repro.service.loadgen import ServiceHarness, keyed_trace
from repro.service.store import ServiceStore
from repro.streams.io import KeyedItem


def _run(main: Callable[[], Awaitable[None]]) -> None:
    """Drive an async test body with asyncio debug instrumentation on."""
    asyncio.run(main(), debug=True)


async def _assert_no_leaked_tasks() -> None:
    others = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]
    assert others == [], f"leaked tasks: {others}"


class TestHttpSurface:
    def test_http_routes_roundtrip(self) -> None:
        async def main() -> None:
            async with ServiceHarness(ExponentialDecay(0.05)) as harness:
                host, port = harness.host, harness.port
                status, body = await http_request(host, port, "GET", "/healthz")
                assert (status, body["ok"]) == (200, True)

                status, body = await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {
                        "items": [
                            {"key": "a", "time": 0, "value": 2.0},
                            {"key": "b", "time": 3},
                        ],
                        "until": 5,
                    },
                )
                assert status == 200
                assert body == {"accepted": 2, "queued": True, "time": 5}

                status, body = await http_request(
                    host, port, "GET", "/query/a"
                )
                assert status == 200
                assert body["time"] == 5
                assert body["lower"] <= body["value"] <= body["upper"]

                status, body = await http_request(
                    host, port, "GET", "/query/ghost"
                )
                assert status == 404

                status, body = await http_request(host, port, "GET", "/keys")
                assert status == 200
                assert body["keys"] == ["a", "b"]
                assert body["stats"]["ingested_items"] == 2
                assert body["daemon"]["running"] is True
                assert body["key_stats"]["b"]["last_seen"] == 3

                # Known path, wrong method vs unknown path.
                status, _ = await http_request(host, port, "POST", "/healthz")
                assert status == 405
                status, _ = await http_request(host, port, "GET", "/nowhere")
                assert status == 404
                status, _ = await http_request(
                    host, port, "POST", "/ingest", {"items": [{"oops": 1}]}
                )
                assert status == 400
            await _assert_no_leaked_tasks()

        _run(main)

    def test_snapshot_restore_over_http(self) -> None:
        async def main() -> None:
            async with ServiceHarness(ExponentialDecay(0.05)) as harness:
                host, port = harness.host, harness.port
                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {"items": [{"key": "a", "time": 2, "value": 3.0}]},
                )
                status, snapshot = await http_request(
                    host, port, "GET", "/snapshot"
                )
                assert status == 200
                _, before = await http_request(host, port, "GET", "/query/a")

                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {"items": [{"key": "a", "time": 9, "value": 5.0}]},
                )
                status, body = await http_request(
                    host, port, "POST", "/restore", snapshot
                )
                assert (status, body["restored"]) == (200, True)
                _, after = await http_request(host, port, "GET", "/query/a")
                assert after == before
            await _assert_no_leaked_tasks()

        _run(main)


class TestWebSocket:
    def test_ws_query_stats_ingest(self) -> None:
        async def main() -> None:
            async with ServiceHarness(ExponentialDecay(0.05)) as harness:
                ws = await WSClient.connect(harness.host, harness.port)
                try:
                    reply = await ws.request(
                        {
                            "op": "ingest",
                            "items": [{"key": "a", "time": 1, "value": 2.0}],
                        }
                    )
                    assert reply == {"accepted": 1, "time": 1}
                    reply = await ws.request({"op": "query", "key": "a"})
                    assert reply["key"] == "a"
                    assert reply["lower"] <= reply["value"] <= reply["upper"]
                    reply = await ws.request({"op": "query", "key": "ghost"})
                    assert "error" in reply
                    reply = await ws.request({"op": "stats"})
                    assert reply["keys"] == ["a"]
                    reply = await ws.request({"op": "warp"})
                    assert "unknown op" in reply["error"]
                finally:
                    await ws.close()
                assert harness.server.ws_connections == 1
            await _assert_no_leaked_tasks()

        _run(main)


class TestTcpFeed:
    def test_json_lines_feed_counts_bad_lines(self) -> None:
        async def main() -> None:
            harness = ServiceHarness(ExponentialDecay(0.05), serve_feed=True)
            await harness.start()
            try:
                reader, writer = await asyncio.open_connection(
                    harness.feed_host, harness.feed_port
                )
                lines = [
                    json.dumps({"key": "a", "time": 0, "value": 1.0}),
                    "this is not json",
                    json.dumps({"key": "a", "time": 4}),  # default value
                    json.dumps({"time": 5}),  # missing key
                ]
                writer.write(("\n".join(lines) + "\n").encode())
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.wait_for(
                    _feed_settled(harness.daemon, 2), timeout=5.0
                )
                await harness.daemon.drain()
                assert harness.daemon.bad_lines == 2
                assert harness.store.ingested_items == 2
                assert harness.store.query("a").value > 0.0
            finally:
                await harness.stop()
            await _assert_no_leaked_tasks()

        _run(main)


async def _feed_settled(daemon: IngestDaemon, expected_items: int) -> None:
    while daemon.items_folded + daemon.stats()["queue_depth"] < expected_items:
        await asyncio.sleep(0.01)


class TestBackpressure:
    @staticmethod
    def _items(n: int) -> list[KeyedItem]:
        return [KeyedItem("k", t, float(t + 1)) for t in range(n)]

    def test_drop_policy_rejects_new_items_when_full(self) -> None:
        async def main() -> None:
            store = ServiceStore(ExponentialDecay(0.05))
            daemon = IngestDaemon(
                store, maxsize=3, backpressure=BackpressurePolicy.dropping()
            )
            # No consumer yet: the queue genuinely fills.
            admitted = await daemon.submit_many(self._items(5))
            assert admitted == 3
            assert daemon.backpressure.dropped_count == 2
            # The two newest items (values 4.0, 5.0) were the ones refused.
            assert daemon.backpressure.dropped_weight == 9.0
            await daemon.start()
            await daemon.stop()
            assert store.ingested_items == 3
            await _assert_no_leaked_tasks()

        _run(main)

    def test_shed_policy_evicts_oldest_and_admits_newest(self) -> None:
        async def main() -> None:
            store = ServiceStore(ExponentialDecay(0.05))
            daemon = IngestDaemon(
                store, maxsize=3, backpressure=BackpressurePolicy.shedding()
            )
            for item in self._items(5):
                assert await daemon.submit(item) is True
            assert daemon.backpressure.dropped_count == 2
            # The two oldest items (values 1.0, 2.0) were shed.
            assert daemon.backpressure.dropped_weight == 3.0
            await daemon.start()
            await daemon.stop()
            # The freshest three (times 2, 3, 4) reached the store.
            assert store.ingested_items == 3
            assert store.time == 4
            await _assert_no_leaked_tasks()

        _run(main)

    def test_stop_without_drain_ledgers_the_leftovers(self) -> None:
        async def main() -> None:
            store = ServiceStore(ExponentialDecay(0.05))
            daemon = IngestDaemon(store, maxsize=16)
            await daemon.submit_many(self._items(4))
            await daemon.stop(drain=False)
            assert store.ingested_items == 0
            assert daemon.backpressure.dropped_count == 4
            await _assert_no_leaked_tasks()

        _run(main)

    def test_stats_shape(self) -> None:
        async def main() -> None:
            store = ServiceStore(ExponentialDecay(0.05))
            daemon = IngestDaemon(store, maxsize=8, batch_max=4)
            await daemon.start()
            await daemon.submit_many(self._items(6))
            await daemon.drain()
            stats = daemon.stats()
            assert stats["running"] is True
            assert stats["queue_depth"] == 0
            assert stats["items_folded"] == 6
            assert stats["batches_folded"] >= 2  # batch_max caps at 4
            assert stats["fold_errors"] == 0
            await daemon.stop()
            assert daemon.stats()["running"] is False
            await _assert_no_leaked_tasks()

        _run(main)

    def test_fold_error_is_counted_not_fatal(self) -> None:
        async def main() -> None:
            store = ServiceStore(ExponentialDecay(0.05))
            daemon = IngestDaemon(store, maxsize=8)
            await daemon.start()
            await daemon.submit(KeyedItem("k", 10, 1.0))
            await daemon.drain()
            # A late item under the default raise policy: the batch fails,
            # the consumer survives, the error is surfaced in stats.
            await daemon.submit(KeyedItem("k", 3, 1.0))
            await daemon.drain()
            await daemon.submit(KeyedItem("k", 11, 2.0))
            await daemon.drain()
            stats = daemon.stats()
            assert stats["fold_errors"] == 1
            assert "TimeOrderError" in str(stats["last_fold_error"])
            assert store.time == 11
            await daemon.stop()
            await _assert_no_leaked_tasks()

        _run(main)


class TestLoadgen:
    def test_keyed_trace_is_deterministic_and_sorted(self) -> None:
        a = keyed_trace(200, 16, seed=5)
        b = keyed_trace(200, 16, seed=5)
        assert a == b
        assert all(
            earlier.time <= later.time for earlier, later in zip(a, a[1:])
        )
        # Zipf skew: the hottest key sees more traffic than the coldest.
        counts: dict[str, int] = {}
        for item in a:
            counts[item.key] = counts.get(item.key, 0) + 1
        assert counts["k0000"] > counts.get("k0015", 0)

    def test_harness_start_is_idempotent(self) -> None:
        async def main() -> None:
            harness = ServiceHarness(ExponentialDecay(0.05))
            await harness.start()
            await harness.start()
            status, _ = await http_request(
                harness.host, harness.port, "GET", "/healthz"
            )
            assert status == 200
            await harness.stop()
            await harness.stop()
            await _assert_no_leaked_tasks()

        _run(main)
