"""The ``service`` conformance execution mode and its engine adapter.

``ConformanceSuite(mode="service")`` lifts every spec into its
:class:`ServiceBackedEngine` twin, so the store-contract laws (CL001
oracle bracket, CL002 batch split, CL006 serialize round-trip, CL009
permutation invariance) run through the keyed store's code path.  These
tests pin the lifting (names, capability flags, default law set), run a
small fuzz slice clean, and check the adapter's protocol surface
directly -- including the ``service-key`` snapshot kind registered with
:mod:`repro.serialize`.
"""

from __future__ import annotations

import pytest

from repro.conformance import cli
from repro.conformance.engines import default_specs, resolve_specs
from repro.conformance.suite import ConformanceSuite
from repro.core.decay import ExponentialDecay
from repro.core.errors import InvalidParameterError
from repro.core.estimate import Estimate
from repro.serialize import engine_from_dict, engine_to_dict
from repro.service.adapter import (
    SERVICE_LAW_IDS,
    ServiceBackedEngine,
    service_spec,
    service_specs,
)
from repro.streams.generators import StreamItem


def _triplet(estimate: Estimate) -> tuple[float, float, float]:
    return (estimate.value, estimate.lower, estimate.upper)


class TestLifting:
    def test_service_spec_keeps_derived_flags(self) -> None:
        for name, spec in default_specs().items():
            lifted = service_spec(spec)
            assert lifted.name == f"svc-{name}"
            assert lifted.order_insensitive == spec.order_insensitive
            assert lifted.linear_exact == spec.linear_exact
            assert lifted.serializable == spec.serializable
            assert lifted.nonincreasing == spec.nonincreasing
            engine = lifted.build()
            assert isinstance(engine, ServiceBackedEngine)
            assert (
                engine.supports_out_of_order == spec.order_insensitive
            )

    def test_service_specs_covers_the_matrix(self) -> None:
        lifted = service_specs()
        assert sorted(lifted) == sorted(
            f"svc-{name}" for name in default_specs()
        )

    def test_suite_service_mode_defaults_to_store_laws(self) -> None:
        suite = ConformanceSuite(
            resolve_specs("expd,sliwin"), mode="service"
        )
        assert sorted(suite.specs) == ["svc-expd", "svc-sliwin"]
        assert tuple(law.law_id for law in suite.laws) == SERVICE_LAW_IDS

    def test_unknown_mode_is_rejected(self) -> None:
        with pytest.raises(InvalidParameterError):
            ConformanceSuite(mode="proxy")

    def test_sharded_lifting_uses_worker_count_naming(self) -> None:
        suite = ConformanceSuite(
            resolve_specs("expd,fwd-exp"),
            mode="service",
            service_workers=3,
        )
        assert sorted(suite.specs) == ["svc3w-expd", "svc3w-fwd-exp"]
        assert tuple(law.law_id for law in suite.laws) == SERVICE_LAW_IDS

    def test_service_workers_requires_service_mode(self) -> None:
        with pytest.raises(InvalidParameterError):
            ConformanceSuite(mode="direct", service_workers=2)


class TestServiceModeRun:
    def test_small_fuzz_slice_holds_through_the_store(self) -> None:
        suite = ConformanceSuite(
            resolve_specs("expd,sliwin,fwd-exp"), mode="service"
        )
        result = suite.run(4)
        assert result.ok, [f.violation.message for f in result.findings]
        assert result.cases > 0
        assert all(name.startswith("svc-") for name in result.engines)

    def test_cli_service_mode_exits_clean(self, capsys) -> None:  # type: ignore[no-untyped-def]
        status = cli.main(
            ["--mode", "service", "--engines", "expd,polyd-wbmh",
             "--seeds", "3"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "svc-expd" in out

    def test_forward_decay_cells_hold_through_sharded_front(self) -> None:
        # Satellite contract: the fwd-exp/fwd-poly cells run the store
        # laws across the 3-worker IPC plane, not just in process.
        suite = ConformanceSuite(
            resolve_specs("fwd-exp,fwd-poly"),
            mode="service",
            service_workers=3,
        )
        result = suite.run(3)
        assert result.ok, [f.violation.message for f in result.findings]
        assert sorted(result.engines) == ["svc3w-fwd-exp", "svc3w-fwd-poly"]

    def test_cli_sharded_service_mode(self, capsys) -> None:  # type: ignore[no-untyped-def]
        status = cli.main(
            ["--mode", "service", "--engines", "expd",
             "--service-workers", "2", "--seeds", "2"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "svc2w-expd" in out

    def test_cli_service_workers_validation(self) -> None:
        with pytest.raises(SystemExit):
            cli.main(["--service-workers", "2"])  # needs --mode service
        with pytest.raises(SystemExit):
            cli.main(["--mode", "service", "--service-workers", "0"])


class TestAdapter:
    def test_adapter_matches_direct_engine(self) -> None:
        rows = [(0, 1.0), (2, 3.0), (2, 1.0), (7, 2.0)]
        adapter = ServiceBackedEngine(ExponentialDecay(0.05))
        adapter.ingest([StreamItem(t, v) for t, v in rows], until=10)
        direct = default_specs()["expd"].build()
        direct.ingest([StreamItem(t, v) for t, v in rows], until=10)
        assert adapter.time == direct.time == 10
        assert _triplet(adapter.query()) == _triplet(direct.query())
        report = adapter.storage_report()
        assert report.engine == direct.storage_report().engine

    def test_service_key_snapshot_roundtrip(self) -> None:
        adapter = ServiceBackedEngine(ExponentialDecay(0.05), key="cell")
        adapter.ingest([StreamItem(0, 2.0), StreamItem(4, 1.0)])
        revived = engine_from_dict(engine_to_dict(adapter))
        assert isinstance(revived, ServiceBackedEngine)
        assert revived.key == "cell"
        for engine in (adapter, revived):
            engine.advance(3)
            engine.add(1.0)
        assert _triplet(revived.query()) == _triplet(adapter.query())

    def test_from_snapshot_rejects_foreign_kinds(self) -> None:
        with pytest.raises(InvalidParameterError):
            ServiceBackedEngine.from_snapshot({"engine": "wbmh"})

    def test_adapter_over_sharded_front_matches_direct(self) -> None:
        rows = [(0, 1.0), (2, 3.0), (2, 1.0), (7, 2.0)]
        adapter = ServiceBackedEngine(ExponentialDecay(0.05), workers=2)
        try:
            adapter.ingest([StreamItem(t, v) for t, v in rows], until=10)
            direct = default_specs()["expd"].build()
            direct.ingest([StreamItem(t, v) for t, v in rows], until=10)
            assert _triplet(adapter.query()) == _triplet(direct.query())
        finally:
            adapter.close()

    def test_sharded_snapshot_roundtrip_through_adapter(self) -> None:
        adapter = ServiceBackedEngine(
            ExponentialDecay(0.05), key="cell", workers=2
        )
        revived = None
        try:
            adapter.ingest([StreamItem(0, 2.0), StreamItem(4, 1.0)])
            revived = engine_from_dict(engine_to_dict(adapter))
            assert isinstance(revived, ServiceBackedEngine)
            for engine in (adapter, revived):
                engine.advance(3)
                engine.add(1.0)
            assert _triplet(revived.query()) == _triplet(adapter.query())
        finally:
            adapter.close()
            if revived is not None:
                revived.close()

    def test_store_and_workers_are_exclusive(self) -> None:
        from repro.service.store import ServiceStore

        with pytest.raises(InvalidParameterError):
            ServiceBackedEngine(
                ExponentialDecay(0.05),
                store=ServiceStore(ExponentialDecay(0.05)),
                workers=2,
            )

    def test_merge_aligns_clocks_like_direct_engines(self) -> None:
        left = ServiceBackedEngine(ExponentialDecay(0.05))
        left.advance(3)
        left.add(2.0)
        right = ServiceBackedEngine(ExponentialDecay(0.05))
        right.advance(8)
        right.add(1.0)
        left.merge(right)
        d_left = default_specs()["expd"].build()
        d_left.advance(3)
        d_left.add(2.0)
        d_right = default_specs()["expd"].build()
        d_right.advance(8)
        d_right.add(1.0)
        d_left.advance_to(d_right.time)
        d_left.merge(d_right)
        assert left.time == d_left.time == 8
        assert _triplet(left.query()) == _triplet(d_left.query())
