"""Out-of-order arrivals through the service path.

The store-level ``buffer`` :class:`OutOfOrderPolicy` keeps one watermark
heap *across* ingest batches -- the cross-batch case the per-call
reorder cannot cover.  These tests pin the exact semantics: a late item
within the window lands in the right key's engine with the store clock
advancing in lock-step release order, items beyond the window drop onto
the policy ledger, and ``GET /keys`` surfaces the ledger verbatim.
Natively order-insensitive engines (forward decay) bypass the policy
entirely via ``add_at``.
"""

from __future__ import annotations

import asyncio

from repro.core.decay import ExponentialDecay
from repro.core.forward import ForwardDecay
from repro.core.interfaces import make_decaying_sum
from repro.core.timeorder import OutOfOrderPolicy
from repro.service.api import http_request
from repro.service.loadgen import ServiceHarness
from repro.service.store import ServiceStore
from repro.streams.generators import StreamItem
from repro.streams.io import KeyedItem


def _triplet(estimate) -> tuple[float, float, float]:  # type: ignore[no-untyped-def]
    return (estimate.value, estimate.lower, estimate.upper)


class TestStoreBuffer:
    def test_cross_batch_late_item_lands_in_the_right_key(self) -> None:
        policy = OutOfOrderPolicy.buffered(2)
        store = ServiceStore(ExponentialDecay(0.05), policy=policy)
        # Batch 1: everything is buffered until the watermark moves on.
        store.observe_batch([KeyedItem("k1", 5, 1.0)])
        assert store.keys() == []
        assert store.stats()["buffered"] == 1
        # Batch 2: k3@2 is beyond the window (watermark 5, lateness 2),
        # k2@4 is late but within it, k1@8 pushes the watermark to 8 and
        # releases t4 and t5 (frontier 6).
        store.observe_batch(
            [
                KeyedItem("k3", 2, 7.0),
                KeyedItem("k2", 4, 2.0),
                KeyedItem("k1", 8, 1.0),
            ]
        )
        assert store.keys() == ["k1", "k2"]
        assert store.time == 5
        assert policy.dropped_count == 1
        assert policy.dropped_weight == 7.0
        assert store.stats()["buffered"] == 1  # k1@8 still in the heap
        assert store.stats()["watermark"] == 8
        store.flush()
        assert store.time == 8
        assert store.stats()["buffered"] == 0

        # Replay the exact release schedule on bare engines: k2's engine
        # is created at t=4 (one advance jump), k1's at t=5; both then
        # advance in lock-step with every later release.
        k2 = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        k2.advance(4)
        k2.add(2.0)
        k2.advance(1)
        k2.advance(3)
        k1 = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        k1.advance(5)
        k1.add(1.0)
        k1.advance(3)
        k1.add(1.0)
        assert _triplet(store.query("k1")) == _triplet(k1.query())
        assert _triplet(store.query("k2")) == _triplet(k2.query())

    def test_buffer_survives_snapshot_roundtrip(self) -> None:
        policy = OutOfOrderPolicy.buffered(3)
        store = ServiceStore(ExponentialDecay(0.05), policy=policy)
        store.observe_batch(
            [KeyedItem("a", 4, 1.0), KeyedItem("b", 6, 2.0)]
        )
        revived = ServiceStore.from_dict(store.to_dict())
        for s in (store, revived):
            s.observe_batch([KeyedItem("a", 10, 1.0)])
            s.flush()
        assert revived.keys() == store.keys()
        for key in store.keys():
            assert _triplet(revived.query(key)) == _triplet(store.query(key))


class TestNativeOutOfOrder:
    def test_forward_engines_take_late_items_directly(self) -> None:
        rows = [(0, 1.0), (6, 2.0), (3, 4.0), (6, 1.0), (2, 5.0)]
        store = ServiceStore(ForwardDecay("exp", 0.05), 0.1)
        assert store.native_out_of_order is True
        store.observe_batch(
            [KeyedItem("k", t, v) for t, v in rows], until=9
        )
        direct = make_decaying_sum(ForwardDecay("exp", 0.05), 0.1)
        direct.ingest([StreamItem(t, v) for t, v in rows], until=9)
        assert _triplet(store.query("k")) == _triplet(direct.query())
        # Nothing was dropped: native engines need no policy.
        assert store.stats()["dropped_count"] == 0


class TestDaemonPath:
    def test_late_arrival_across_daemon_batches(self) -> None:
        async def main() -> None:
            policy = OutOfOrderPolicy.buffered(2)
            async with ServiceHarness(
                ExponentialDecay(0.05), policy=policy
            ) as harness:
                host, port = harness.host, harness.port
                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {"items": [{"key": "k1", "time": 5, "value": 1.0}]},
                )
                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {
                        "items": [
                            {"key": "k3", "time": 2, "value": 7.0},
                            {"key": "k2", "time": 4, "value": 2.0},
                            {"key": "k1", "time": 8, "value": 1.0},
                        ]
                    },
                )
                status, body = await http_request(host, port, "GET", "/keys")
                assert status == 200
                # The late k2@4 landed in k2's engine; the too-late k3@2
                # is on the ledger the endpoint surfaces.
                assert body["keys"] == ["k1", "k2"]
                assert body["stats"]["dropped_count"] == 1
                assert body["stats"]["dropped_weight"] == 7.0
                assert body["stats"]["buffered"] == 1
                assert body["stats"]["watermark"] == 8
            # Shutdown drains the lateness buffer (k1@8).
            assert harness.store.time == 8
            k1 = make_decaying_sum(ExponentialDecay(0.05), 0.1)
            k1.advance(5)
            k1.add(1.0)
            k1.advance(3)
            k1.add(1.0)
            assert _triplet(harness.store.query("k1")) == _triplet(k1.query())

        asyncio.run(main())

    def test_drop_policy_ledger_surfaced_over_http(self) -> None:
        async def main() -> None:
            policy = OutOfOrderPolicy.dropping()
            async with ServiceHarness(
                ExponentialDecay(0.05), policy=policy
            ) as harness:
                host, port = harness.host, harness.port
                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {"items": [{"key": "a", "time": 9, "value": 1.0}]},
                )
                await http_request(
                    host,
                    port,
                    "POST",
                    "/ingest",
                    {"items": [{"key": "a", "time": 4, "value": 3.5}]},
                )
                status, body = await http_request(host, port, "GET", "/keys")
                assert status == 200
                assert body["stats"]["dropped_count"] == 1
                assert body["stats"]["dropped_weight"] == 3.5
                assert harness.daemon.fold_errors == 0

        asyncio.run(main())
