"""Unit tests for :class:`repro.service.store.ServiceStore`.

The store is the synchronous heart of the service layer; everything here
runs without an event loop.  The contracts under test: single-key folds
are bit-identical to a directly-driven factory engine, TTL eviction is
clock-driven and ledgered, lossy paths always account their losses, and
snapshots continue bit-identically.
"""

from __future__ import annotations

import pytest

from repro.core.decay import ExponentialDecay, SlidingWindowDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.estimate import Estimate
from repro.core.interfaces import DecayingSum, make_decaying_sum
from repro.core.timeorder import OutOfOrderPolicy
from repro.service.store import EvictionLedger, ServiceStore
from repro.streams.generators import StreamItem
from repro.streams.io import KeyedItem


def _triplet(estimate: Estimate) -> tuple[float, float, float]:
    return (estimate.value, estimate.lower, estimate.upper)


class TestConstruction:
    def test_epsilon_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            ServiceStore(ExponentialDecay(0.05), 0.0)
        with pytest.raises(InvalidParameterError):
            ServiceStore(ExponentialDecay(0.05), 1.0)

    def test_ttl_and_shards_validated(self) -> None:
        with pytest.raises(InvalidParameterError):
            ServiceStore(ExponentialDecay(0.05), ttl=0)
        with pytest.raises(InvalidParameterError):
            ServiceStore(ExponentialDecay(0.05), shards=0)

    def test_shards_and_custom_factory_are_exclusive(self) -> None:
        with pytest.raises(InvalidParameterError):
            ServiceStore(
                ExponentialDecay(0.05),
                shards=2,
                engine_factory=lambda: make_decaying_sum(
                    ExponentialDecay(0.05), 0.1
                ),
            )

    def test_clock_validation(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.advance_to(5)
        with pytest.raises(InvalidParameterError):
            store.advance(-1)
        with pytest.raises(TimeOrderError):
            store.advance_to(3)


class TestFolding:
    def test_single_key_batch_matches_direct_engine(self) -> None:
        rows = [(0, 2.0), (0, 1.0), (3, 4.0), (7, 1.0), (7, 2.0)]
        store = ServiceStore(SlidingWindowDecay(16), 0.1)
        store.observe_batch(
            [KeyedItem("k", t, v) for t, v in rows], until=10
        )
        direct = make_decaying_sum(SlidingWindowDecay(16), 0.1)
        direct.ingest([StreamItem(t, v) for t, v in rows], until=10)
        assert store.time == direct.time == 10
        assert _triplet(store.query("k")) == _triplet(direct.query())

    def test_observe_singletons_match_batch(self) -> None:
        rows = [(1, 1.0), (4, 2.0), (4, 3.0), (9, 1.0)]
        one = ServiceStore(ExponentialDecay(0.05))
        for t, v in rows:
            one.observe("k", v, when=t)
        batch = ServiceStore(ExponentialDecay(0.05))
        batch.observe_batch([KeyedItem("k", t, v) for t, v in rows])
        assert _triplet(one.query("k")) == _triplet(batch.query("k"))

    def test_late_engine_creation_joins_the_shared_clock(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.observe("a", 1.0, when=0)
        store.advance_to(12)
        engine = store.engine("b")
        assert engine.time == 12
        assert store.query("b").value == 0.0

    def test_observe_values_folds_at_the_current_clock(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.advance_to(4)
        store.observe_values("k", [1.0, 2.0])
        store.observe_values("k", [])
        direct = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        direct.advance(4)
        direct.add_batch([1.0, 2.0])
        assert _triplet(store.query("k")) == _triplet(direct.query())
        assert store.ingested_items == 2

    def test_query_unknown_key_raises_keyerror(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        with pytest.raises(KeyError):
            store.query("ghost")

    def test_keys_sorted_and_membership(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.observe("b", 1.0)
        store.observe("a", 1.0)
        assert store.keys() == ["a", "b"]
        assert "a" in store and "ghost" not in store
        assert len(store) == 2


class TestLateItems:
    def test_late_item_raises_by_default(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.advance_to(10)
        with pytest.raises(TimeOrderError):
            store.observe("k", 1.0, when=4)
        with pytest.raises(TimeOrderError):
            store.observe_batch([KeyedItem("k", 4, 1.0)])

    def test_drop_policy_counts_what_it_discards(self) -> None:
        policy = OutOfOrderPolicy.dropping()
        store = ServiceStore(ExponentialDecay(0.05), policy=policy)
        store.observe("k", 1.0, when=10)
        store.observe_batch([KeyedItem("k", 3, 5.0)])
        store.observe("k", 2.5, when=1)
        assert policy.dropped_count == 2
        assert policy.dropped_weight == 7.5
        assert store.stats()["dropped_count"] == 2

    def test_until_cannot_move_backwards(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.advance_to(9)
        with pytest.raises(TimeOrderError):
            store.observe_batch([], until=5)

    def test_per_call_buffer_policy_is_rejected(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        with pytest.raises(InvalidParameterError):
            store.observe_batch(
                [KeyedItem("k", 0, 1.0)],
                policy=OutOfOrderPolicy.buffered(4),
            )


class TestTTLEviction:
    def test_idle_key_is_evicted_on_advance(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05), ttl=10)
        store.observe("old", 4.0, when=0)
        store.observe("young", 1.0, when=5)
        expected = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        expected.add(4.0)
        expected.advance(5)  # store advanced 0 -> 5 at young's arrival
        expected.advance(5)  # and 5 -> 10 at the sweep that evicts
        store.advance_to(10)
        assert store.keys() == ["young"]
        assert store.eviction.evicted_keys == 1
        assert store.eviction.evicted_weight == expected.query().value

    def test_fresh_observation_resets_the_ttl(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05), ttl=10)
        store.observe("k", 1.0, when=0)
        store.observe("k", 1.0, when=8)  # stale heap entry superseded
        store.advance_to(12)
        assert store.keys() == ["k"]
        store.advance_to(18)
        assert store.keys() == []
        assert store.eviction.evicted_keys == 1

    def test_evicted_key_restarts_from_scratch(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05), ttl=5)
        store.observe("k", 100.0, when=0)
        store.advance_to(5)
        assert "k" not in store
        store.observe("k", 1.0)
        fresh = make_decaying_sum(ExponentialDecay(0.05), 0.1)
        fresh.advance(5)
        fresh.add(1.0)
        assert _triplet(store.query("k")) == _triplet(fresh.query())

    def test_ledger_repr_and_counts(self) -> None:
        ledger = EvictionLedger()
        ledger.note(2.0)
        ledger.note(3.0)
        assert ledger.evicted_keys == 2
        assert ledger.evicted_weight == 5.0
        assert "EvictionLedger" in repr(ledger)


class TestStats:
    def test_stats_track_the_ledgers(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05), ttl=4)
        store.observe("a", 2.0, when=0)
        store.observe("b", 3.0, when=1)
        store.advance_to(4)
        stats = store.stats()
        assert stats["time"] == 4
        assert stats["keys"] == 1
        assert stats["ingested_items"] == 2
        assert stats["ingested_weight"] == 5.0
        assert stats["evicted_keys"] == 1

    def test_key_stats_report_idleness(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05))
        store.observe("a", 1.0, when=2)
        store.advance_to(7)
        assert store.key_stats() == {"a": {"last_seen": 2, "idle": 5}}

    def test_storage_report_aggregates_engines(self) -> None:
        store = ServiceStore(SlidingWindowDecay(16))
        store.observe_batch(
            [KeyedItem("a", 0, 1.0), KeyedItem("b", 1, 1.0)]
        )
        report = store.storage_report()
        assert report.engine == "service[2]"
        single = store.engine("a").storage_report()
        assert report.buckets >= single.buckets


class TestMemoization:
    def test_memoized_matches_unmemoized_bit_for_bit(self) -> None:
        # The read memo keys on (clock, per-key write generation): any
        # interleaving of reads and writes must be invisible in results.
        memo = ServiceStore(ExponentialDecay(0.05), 0.1, memoize=True)
        plain = ServiceStore(ExponentialDecay(0.05), 0.1, memoize=False)
        items = [
            KeyedItem(f"k{i % 3}", t, 0.5 + (i % 4))
            for i, t in enumerate(range(0, 36, 2))
        ]
        for store in (memo, plain):
            for item in items:
                store.observe(item.key, item.value, when=item.time)
                store.query(item.key)  # interleaved read on every write
            store.advance(3)
        for key in plain.keys():
            want = plain.query(key)
            got = memo.query(key)
            assert (got.value, got.lower, got.upper) == (
                want.value,
                want.lower,
                want.upper,
            )
        want_total = plain.query_total()
        got_total = memo.query_total()
        assert (got_total.value, got_total.lower, got_total.upper) == (
            want_total.value,
            want_total.lower,
            want_total.upper,
        )

    def test_repeat_read_returns_identical_estimate(self) -> None:
        store = ServiceStore(ExponentialDecay(0.05), 0.1)
        store.observe("k", 2.0)
        first = store.query("k")
        assert store.query("k") is first  # served from the memo
        store.observe("k", 1.0)  # write generation bump invalidates
        assert store.query("k") is not first
        before = store.query("k")
        store.advance(1)  # clock motion re-keys the memo
        assert store.query("k") is not before

    def test_memoize_is_a_runtime_knob_not_snapshot_state(self) -> None:
        # Snapshots carry stream state, not serving configuration: a
        # restore keeps the receiving store's memoize choice.
        source = ServiceStore(ExponentialDecay(0.05), 0.1)
        source.observe("k", 1.0)
        receiver = ServiceStore(ExponentialDecay(0.05), 0.1, memoize=False)
        receiver.restore(source.to_dict())
        assert receiver._memoize is False
        assert receiver.query("k").value == source.query("k").value


class TestSharded:
    def test_sharded_store_folds_and_snapshots(self) -> None:
        rows = [KeyedItem("k", t, float(v)) for t, v in
                [(0, 1), (1, 2), (1, 1), (4, 3), (6, 1)]]
        store = ServiceStore(ExponentialDecay(0.05), shards=3)
        store.observe_batch(rows, until=8)
        clone = ServiceStore.from_dict(store.to_dict())
        assert _triplet(clone.query("k")) == _triplet(store.query("k"))
        more = [KeyedItem("k", 9, 2.0), KeyedItem("k", 11, 1.0)]
        store.observe_batch(more)
        clone.observe_batch(more)
        assert _triplet(clone.query("k")) == _triplet(store.query("k"))


class TestSnapshot:
    @staticmethod
    def _seeded(ttl: int | None = None) -> ServiceStore:
        store = ServiceStore(SlidingWindowDecay(16), 0.1, ttl=ttl)
        store.observe_batch(
            [
                KeyedItem("a", 0, 2.0),
                KeyedItem("b", 3, 1.0),
                KeyedItem("a", 3, 1.0),
                KeyedItem("b", 7, 4.0),
            ]
        )
        return store

    def test_roundtrip_continues_bit_identically(self) -> None:
        store = self._seeded(ttl=12)
        clone = ServiceStore.from_dict(store.to_dict())
        tail = [KeyedItem("a", 9, 1.0), KeyedItem("c", 15, 2.0)]
        store.observe_batch(tail, until=30)
        clone.observe_batch(tail, until=30)
        assert clone.keys() == store.keys()
        for key in store.keys():
            assert _triplet(clone.query(key)) == _triplet(store.query(key))
        assert clone.stats() == store.stats()

    def test_restore_replaces_state_in_place(self) -> None:
        store = self._seeded()
        snapshot = store.to_dict()
        store.observe("a", 50.0, when=20)
        store.restore(snapshot)
        assert store.time == 7
        assert store.keys() == ["a", "b"]

    def test_snapshot_preserves_ledgers_and_policy(self) -> None:
        policy = OutOfOrderPolicy.dropping()
        store = ServiceStore(ExponentialDecay(0.05), policy=policy)
        store.observe("k", 1.0, when=5)
        store.observe("k", 9.0, when=2)  # dropped
        clone = ServiceStore.from_dict(store.to_dict())
        assert clone.policy is not None
        assert clone.policy.kind == "drop"
        assert clone.policy.dropped_count == 1
        assert clone.policy.dropped_weight == 9.0

    def test_custom_factory_refuses_to_snapshot(self) -> None:
        def factory() -> DecayingSum:
            return make_decaying_sum(ExponentialDecay(0.05), 0.1)

        store = ServiceStore(ExponentialDecay(0.05), engine_factory=factory)
        store.observe("k", 1.0)
        with pytest.raises(InvalidParameterError):
            store.to_dict()

    def test_bad_snapshots_are_rejected(self) -> None:
        store = self._seeded()
        data = store.to_dict()
        with pytest.raises(InvalidParameterError):
            ServiceStore.from_dict({**data, "version": 99})
        with pytest.raises(InvalidParameterError):
            ServiceStore.from_dict({**data, "kind": "mystery"})
