"""Unit tests for the ATM holding-time policy (paper section 1.1)."""

import pytest

from repro.apps.atm import Circuit, HoldingPolicy
from repro.core.average import DecayingAverage
from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError
from repro.core.ewma import EwmaRegister


def make_circuit(name, w=0.5):
    return Circuit(name, EwmaRegister(w))


class TestCircuit:
    def test_idle_estimate_from_gaps(self):
        c = make_circuit("a", w=0.5)
        c.observe_burst(0)
        c.observe_burst(10)  # idle 10
        assert c.anticipated_idle() == 10.0
        c.observe_burst(12)  # idle 2
        assert c.anticipated_idle() == pytest.approx(0.5 * 2 + 0.5 * 10)

    def test_unobserved_circuit_is_infinite(self):
        assert make_circuit("a").anticipated_idle() == float("inf")

    def test_decaying_average_backend(self):
        c = Circuit("a", DecayingAverage(PolynomialDecay(1.0), epsilon=0.1))
        c.observe_burst(0)
        c.observe_burst(5)
        c.observe_burst(9)
        assert 3.0 < c.anticipated_idle() < 6.0

    def test_rejects_time_regression(self):
        c = make_circuit("a")
        c.observe_burst(10)
        with pytest.raises(InvalidParameterError):
            c.observe_burst(5)


class TestHoldingPolicy:
    def test_closes_longest_anticipated_idle(self):
        # c_fast bursts every 2 ticks, c_slow every 40: under a 1-circuit
        # budget the policy should keep c_fast open.
        fast = make_circuit("fast")
        slow = make_circuit("slow")
        policy = HoldingPolicy([fast, slow], max_open=1)
        bursts = []
        for t in range(0, 200, 2):
            bursts.append((t, "fast"))
        for t in range(0, 200, 40):
            bursts.append((t, "slow"))
        policy.run(sorted(bursts))
        assert policy.open_circuits() == ["fast"]

    def test_reopen_accounting(self):
        a = make_circuit("a")
        b = make_circuit("b")
        policy = HoldingPolicy([a, b], max_open=1)
        stats = policy.run([(0, "a"), (1, "b"), (2, "a")])
        # Every burst at a closed circuit is a reopen; "a" was evicted by
        # "b"'s arrival under the 1-circuit budget.
        assert stats.reopens == 3
        assert stats.bursts == 3

    def test_holding_cost_counts_open_ticks(self):
        a = make_circuit("a")
        policy = HoldingPolicy([a], max_open=1)
        stats = policy.run([(0, "a"), (10, "a")])
        assert stats.holding_ticks == 10
        assert stats.cost(holding_cost=1.0, reopen_cost=0.0) == 10.0

    def test_generous_budget_never_closes(self):
        a = make_circuit("a")
        b = make_circuit("b")
        policy = HoldingPolicy([a, b], max_open=2)
        stats = policy.run([(0, "a"), (1, "b"), (50, "a"), (51, "b")])
        assert stats.reopens == 2  # only the initial opens

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            HoldingPolicy([], max_open=1)
        with pytest.raises(InvalidParameterError):
            HoldingPolicy([make_circuit("a")], max_open=0)
        with pytest.raises(InvalidParameterError):
            HoldingPolicy([make_circuit("a"), make_circuit("a")], max_open=1)
        policy = HoldingPolicy([make_circuit("a")], max_open=1)
        with pytest.raises(InvalidParameterError):
            policy.run([(0, "unknown")])
        with pytest.raises(InvalidParameterError):
            policy.run([(5, "a"), (0, "a")])
