"""Unit tests for the RED gateway simulator (paper section 1.1)."""

import random

import pytest

from repro.apps.red import RedConfig, RedGateway
from repro.core.average import DecayingAverage
from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError
from repro.core.ewma import EwmaRegister


class TestConfig:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(InvalidParameterError):
            RedConfig(min_threshold=10, max_threshold=5)
        with pytest.raises(InvalidParameterError):
            RedConfig(max_drop_probability=0.0)
        with pytest.raises(InvalidParameterError):
            RedConfig(queue_capacity=0)


class TestDropRamp:
    def test_ramp_shape(self):
        gw = RedGateway(RedConfig(), EwmaRegister(0.9))
        cfg = gw.config
        assert gw.drop_probability(cfg.min_threshold - 1) == 0.0
        assert gw.drop_probability(cfg.max_threshold) == 1.0
        mid = (cfg.min_threshold + cfg.max_threshold) / 2
        assert gw.drop_probability(mid) == pytest.approx(
            cfg.max_drop_probability / 2
        )


class TestSimulation:
    def test_light_load_no_red_drops(self):
        gw = RedGateway(RedConfig(service_rate=5), EwmaRegister(0.9), seed=1)
        stats = gw.run([1] * 500)
        assert stats.dropped_red == 0
        assert stats.transmitted == 500

    def test_heavy_load_triggers_red(self):
        gw = RedGateway(RedConfig(service_rate=2), EwmaRegister(0.9), seed=2)
        rng = random.Random(3)
        stats = gw.run(rng.randint(0, 8) for _ in range(2000))
        assert stats.dropped_red > 0
        assert 0 < stats.drop_rate < 1

    def test_red_reduces_tail_drops_vs_no_red(self):
        # A gateway whose average never crosses min_threshold does pure
        # tail-drop; RED sheds load earlier and smooths the queue.
        rng_profile = [8 if (t // 50) % 2 == 0 else 0 for t in range(4000)]
        red = RedGateway(RedConfig(service_rate=4), EwmaRegister(0.7), seed=4)
        red_stats = red.run(rng_profile)
        no_red = RedGateway(
            RedConfig(service_rate=4, min_threshold=49, max_threshold=50),
            EwmaRegister(0.7),
            seed=4,
        )
        tail_stats = no_red.run(rng_profile)
        assert red_stats.dropped_tail <= tail_stats.dropped_tail

    def test_decaying_average_backend(self):
        avg = DecayingAverage(PolynomialDecay(1.0), epsilon=0.1)
        gw = RedGateway(RedConfig(service_rate=2), avg, seed=5)
        rng = random.Random(6)
        stats = gw.run(rng.randint(0, 6) for _ in range(800))
        assert stats.ticks == 800
        assert len(stats.avg_estimates) == 800
        assert stats.offered == stats.dropped_red + stats.dropped_tail + (
            stats.transmitted + gw.queue_length
        )

    def test_rejects_negative_arrivals(self):
        gw = RedGateway(RedConfig(), EwmaRegister(0.9))
        with pytest.raises(InvalidParameterError):
            gw.tick(-1)

    def test_average_tracks_queue(self):
        gw = RedGateway(RedConfig(queue_capacity=100, service_rate=1),
                        EwmaRegister(0.5), seed=7)
        gw.run([3] * 100)
        assert gw.average_queue() > 5
