"""Unit tests for the path-selection application (Figure 1 at fleet scale)."""

import pytest

from repro.apps.gateway import PathSelector, rate_trace
from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.streams.traces import FailureEvent, LinkTrace, figure1_traces


class TestPathSelector:
    def test_best_path_prefers_fewer_failures(self):
        sel = PathSelector(["a", "b"], PolynomialDecay(1.0), exact=True)
        sel.observe_failure("a", when=5)
        sel.observe_failure("a", when=6)
        sel.observe_failure("b", when=7)
        sel.advance_to(100)
        assert sel.best_path() == "b"

    def test_tie_breaks_lexicographically(self):
        sel = PathSelector(["b", "a"], PolynomialDecay(1.0), exact=True)
        sel.advance_to(10)
        assert sel.best_path() == "a"

    def test_ratings_reflect_magnitude(self):
        sel = PathSelector(["a", "b"], ExponentialDecay(0.01), exact=True)
        sel.observe_failure("a", when=0, magnitude=10.0)
        sel.observe_failure("b", when=0, magnitude=1.0)
        sel.advance_to(50)
        r = sel.ratings()
        assert r["a"] == pytest.approx(10 * r["b"])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PathSelector([], PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            PathSelector(["a", "a"], PolynomialDecay(1.0))
        sel = PathSelector(["a"], PolynomialDecay(1.0), exact=True)
        with pytest.raises(InvalidParameterError):
            sel.observe_failure("zzz", when=0)
        sel.advance_to(10)
        with pytest.raises(InvalidParameterError):
            sel.observe_failure("a", when=5)
        with pytest.raises(InvalidParameterError):
            sel.advance_to(5)


class TestRateTrace:
    def test_rating_is_decayed_failure_mass(self):
        g = PolynomialDecay(1.0)
        trace = LinkTrace("L", [FailureEvent(0, 3)])
        times = [10, 100]
        got = rate_trace(trace, g, times)
        for when, rating in zip(times, got):
            expected = sum(g.weight(when - t) for t in range(3))
            assert rating == pytest.approx(expected)

    def test_rejects_unsorted_times(self):
        trace = LinkTrace("L", [FailureEvent(0, 1)])
        with pytest.raises(InvalidParameterError):
            rate_trace(trace, PolynomialDecay(1.0), [10, 5])

    def test_figure1_crossover_polyd_only(self):
        # The paper's central claim, as a unit test (the benchmark maps it
        # in full): under POLYD the verdict flips -- right after L2's
        # failure the recent (small) event outweighs the old (large) one,
        # but as both age the severity ratio takes over and L2 emerges as
        # the more reliable link. EXPD never flips.
        l1, l2 = figure1_traces()
        probe_early = l2.events[0].end + 60  # 1h after L2's failure
        probe_late = probe_early + 1_000_000  # much later
        times = [probe_early, probe_late]

        r1 = rate_trace(l1, PolynomialDecay(1.0), times)
        r2 = rate_trace(l2, PolynomialDecay(1.0), times)
        assert r1[0] < r2[0]  # initially L1 looks more reliable
        assert r1[1] > r2[1] * 5  # eventually L2 wins by ~severity ratio

        # EXPD: the two events' relative contribution is fixed forever, so
        # the ratio of ratings is the same at any two (finite-weight)
        # probe times -- no crossover can ever occur.
        expd = ExponentialDecay(1.0 / (48 * 60))
        probes = [probe_early, probe_early + 3000]
        e1 = rate_trace(l1, expd, probes)
        e2 = rate_trace(l2, expd, probes)
        assert e1[0] / e2[0] == pytest.approx(e1[1] / e2[1], rel=1e-6)
