"""Unit tests for the Estimate value object."""

import math

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.estimate import Estimate


class TestConstruction:
    def test_exact(self):
        e = Estimate.exact(5.0)
        assert e.value == e.lower == e.upper == 5.0

    def test_from_bracket_midpoint(self):
        e = Estimate.from_bracket(2.0, 4.0)
        assert e.value == 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidParameterError):
            Estimate(value=1.0, lower=2.0, upper=0.5)

    def test_rejects_value_outside_bracket(self):
        with pytest.raises(InvalidParameterError):
            Estimate(value=10.0, lower=0.0, upper=5.0)

    def test_clamps_float_jitter(self):
        # A value epsilon above the upper bound from float arithmetic is
        # clamped rather than rejected.
        e = Estimate(value=1.0 + 1e-12, lower=0.0, upper=1.0)
        assert e.value == 1.0

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            Estimate(value=float("nan"), lower=0.0, upper=1.0)

    def test_rejects_empty_bracket(self):
        with pytest.raises(InvalidParameterError):
            Estimate.from_bracket(3.0, 2.0)


class TestQueries:
    def test_contains(self):
        e = Estimate(value=3.0, lower=2.0, upper=4.0)
        assert e.contains(2.0) and e.contains(4.0) and e.contains(3.3)
        assert not e.contains(4.5)

    def test_contains_with_slack(self):
        e = Estimate.exact(1.0)
        assert e.contains(1.0 + 1e-12)

    def test_relative_error(self):
        e = Estimate(value=11.0, lower=9.0, upper=12.0)
        assert e.relative_error_vs(10.0) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert Estimate.exact(0.0).relative_error_vs(0.0) == 0.0
        assert Estimate.exact(1.0).relative_error_vs(0.0) == math.inf

    def test_width_ratio(self):
        assert Estimate(value=3.0, lower=2.0, upper=4.0).width_ratio() == 2.0
        assert Estimate.exact(0.0).width_ratio() == 1.0
        assert Estimate(value=1.0, lower=0.0, upper=2.0).width_ratio() == math.inf


class TestArithmetic:
    def test_add(self):
        a = Estimate(value=1.0, lower=0.5, upper=1.5)
        b = Estimate(value=2.0, lower=1.5, upper=2.5)
        c = a + b
        assert (c.value, c.lower, c.upper) == (3.0, 2.0, 4.0)

    def test_scaled(self):
        e = Estimate(value=2.0, lower=1.0, upper=3.0).scaled(2.0)
        assert (e.value, e.lower, e.upper) == (4.0, 2.0, 6.0)

    def test_scaled_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            Estimate.exact(1.0).scaled(-1.0)

    def test_float_conversion(self):
        assert float(Estimate(value=2.5, lower=2.0, upper=3.0)) == 2.5
