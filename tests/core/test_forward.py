"""Unit tests for the forward-decay engine family (Cormode et al. 2009)."""

import math
import random

import pytest

from repro.core.decay import ExponentialDecay, PolynomialDecay
from repro.core.errors import (
    EmptyAggregateError,
    InvalidParameterError,
    NotApplicableError,
    TimeOrderError,
)
from repro.core.forward import (
    ExactForwardSum,
    ForwardDecay,
    ForwardDecayAverage,
    ForwardDecaySum,
)
from repro.core.interfaces import make_decaying_sum
from repro.serialize import engine_from_dict, engine_to_dict
from repro.streams.generators import StreamItem


def triplet(engine):
    est = engine.query()
    return est.value, est.lower, est.upper


class TestForwardDecay:
    def test_kind_and_rate_validation(self):
        with pytest.raises(InvalidParameterError):
            ForwardDecay("linear", 1.0)
        with pytest.raises(InvalidParameterError):
            ForwardDecay("exp", 0.0)
        with pytest.raises(InvalidParameterError):
            ForwardDecay("exp", -1.0)
        with pytest.raises(InvalidParameterError):
            ForwardDecay("poly", math.inf)

    def test_exp_kind_induces_backward_exponential(self):
        d = ForwardDecay("exp", 0.25)
        assert d.shift_invariant
        assert d.weight(0) == pytest.approx(1.0)
        assert d.weight(4) == pytest.approx(math.exp(-1.0))
        assert d.is_ratio_nonincreasing()

    def test_poly_kind_has_no_age_indexed_weight(self):
        d = ForwardDecay("poly", 2.0)
        assert not d.shift_invariant
        with pytest.raises(NotApplicableError):
            d.weight(3)
        with pytest.raises(NotApplicableError):
            d.is_ratio_nonincreasing()

    def test_log2_g_matches_definition(self):
        exp = ForwardDecay("exp", 0.1)
        assert exp.log2_g(100) == pytest.approx(0.1 * 100 / math.log(2))
        poly = ForwardDecay("poly", 1.5)
        assert poly.log2_g(7) == pytest.approx(1.5 * math.log2(8))
        assert poly.log2_g(0) == 0.0

    def test_describe_and_repr(self):
        d = ForwardDecay("exp", 0.05)
        assert "FWD-EXP" in d.describe()
        assert "ForwardDecay" in repr(d)


class TestForwardDecaySum:
    def test_empty_stream(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        assert s.query().value == 0.0
        s.advance(1000)
        assert s.query().value == 0.0

    def test_requires_forward_decay(self):
        with pytest.raises(InvalidParameterError):
            ForwardDecaySum(ExponentialDecay(0.1))

    def test_exp_matches_backward_exponential_closed_form(self):
        rate = 0.1
        s = ForwardDecaySum(ForwardDecay("exp", rate))
        s.add(2.0)
        s.advance(5)
        s.add(3.0)
        s.advance(7)
        expected = 2.0 * math.exp(-rate * 12) + 3.0 * math.exp(-rate * 7)
        assert s.query().value == pytest.approx(expected, rel=1e-12)

    def test_poly_matches_definition(self):
        rate = 1.5
        s = ForwardDecaySum(ForwardDecay("poly", rate))
        s.advance(3)
        s.add(2.0)
        s.advance(5)  # T = 8
        expected = 2.0 * (4.0 / 9.0) ** rate
        assert s.query().value == pytest.approx(expected, rel=1e-12)

    def test_query_is_exact_estimate(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        s.add(1.0)
        s.advance(3)
        est = s.query()
        assert est.lower == est.value == est.upper

    def test_add_at_accepts_late_items(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        s.advance(100)
        s.add_at(10, 5.0)  # 90 ticks behind the clock: accepted
        assert s.time == 100
        assert s.query().value == pytest.approx(
            5.0 * math.exp(-0.1 * 90), rel=1e-12
        )

    def test_add_at_beyond_clock_advances_it(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        s.add_at(42, 1.0)
        assert s.time == 42

    def test_input_validation(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        with pytest.raises(InvalidParameterError):
            s.add(-1.0)
        with pytest.raises(InvalidParameterError):
            s.add_at(-1, 1.0)
        with pytest.raises(InvalidParameterError):
            s.add_at(0, -1.0)
        with pytest.raises(InvalidParameterError):
            s.advance(-1)
        with pytest.raises(TimeOrderError):
            s.ingest([StreamItem(3, 1.0)], until=1)

    def test_overflowing_contribution_rejected(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        with pytest.raises(InvalidParameterError):
            s.add(math.inf)

    def test_huge_values_banked_exactly(self):
        # A value >= 2**52 is integer-valued as a double; the exponent-0
        # branch banks it without the 2**52 rescale (which would overflow
        # past ~2**971).
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        s.add(float(2**1000))
        assert s.query().value == float(2**1000)

    def test_long_exponential_stream_never_overflows(self):
        # lam * t reaches 2e4 >> 709: the literal g(t) overflows a double
        # ~28 times over, but the block accumulator never leaves range.
        rate = 2.0
        s = ForwardDecaySum(ForwardDecay("exp", rate))
        for t in range(0, 10_001, 100):
            s.add_at(t, 1.0)
        expected = sum(
            math.exp(-rate * (10_000 - t)) for t in range(0, 10_001, 100)
        )
        assert s.query().value == pytest.approx(expected, rel=1e-9)

    def test_quiet_period_underflows_to_zero(self):
        s = ForwardDecaySum(ForwardDecay("exp", 1.0))
        s.add(1.0)
        s.advance(100_000)
        assert s.query().value == 0.0

    def test_ingest_bit_identical_to_add_at_any_order(self):
        rng = random.Random(7)
        items = [
            StreamItem(rng.randrange(0, 500), rng.choice([0.5, 1.0, 3.25]))
            for _ in range(300)
        ]
        a = ForwardDecaySum(ForwardDecay("exp", 0.05))
        a.ingest(items, until=600)
        b = ForwardDecaySum(ForwardDecay("exp", 0.05))
        for item in sorted(items, key=lambda i: i.time):
            b.add_at(item.time, item.value)
        b.advance_to(600)
        assert triplet(a) == triplet(b)
        assert a.time == b.time == 600

    def test_add_batch_bit_identical_to_adds(self):
        values = [1.0, 1.0, 1.0, 0.25, 7.5, 0.0, 1.0]
        a = ForwardDecaySum(ForwardDecay("poly", 1.2))
        a.advance(9)
        a.add_batch(values)
        b = ForwardDecaySum(ForwardDecay("poly", 1.2))
        b.advance(9)
        for v in values:
            b.add(v)
        assert triplet(a) == triplet(b)

    def test_merge_bit_identical_to_union_stream(self):
        rng = random.Random(11)
        left = [StreamItem(rng.randrange(0, 200), 1.0) for _ in range(80)]
        right = [StreamItem(rng.randrange(0, 200), 2.5) for _ in range(80)]
        a = ForwardDecaySum(ForwardDecay("exp", 0.02))
        a.ingest(left, until=250)
        b = ForwardDecaySum(ForwardDecay("exp", 0.02))
        b.ingest(right, until=250)
        a.merge(b)
        union = ForwardDecaySum(ForwardDecay("exp", 0.02))
        union.ingest(left + right, until=250)
        assert triplet(a) == triplet(union)

    def test_merge_requires_same_decay(self):
        a = ForwardDecaySum(ForwardDecay("exp", 0.1))
        b = ForwardDecaySum(ForwardDecay("exp", 0.2))
        with pytest.raises(InvalidParameterError):
            a.merge(b)

    def test_storage_report_notes_exactness(self):
        s = ForwardDecaySum(ForwardDecay("exp", 0.1))
        s.add(1.0)
        report = s.storage_report()
        assert report.engine == "forward"
        assert report.notes["exact"] == 1.0
        assert report.buckets >= 1

    def test_serialize_roundtrip_bit_identical(self):
        rng = random.Random(3)
        s = ForwardDecaySum(ForwardDecay("poly", 1.7))
        s.ingest(
            [StreamItem(rng.randrange(0, 300), 1.0) for _ in range(120)],
            until=400,
        )
        clone = engine_from_dict(engine_to_dict(s))
        assert isinstance(clone, ForwardDecaySum)
        assert clone.time == s.time
        assert triplet(clone) == triplet(s)
        clone.add(1.0)  # the revived engine keeps working
        assert clone.query().value >= s.query().value

    def test_factory_routes_forward_decay(self):
        s = make_decaying_sum(ForwardDecay("exp", 0.1), epsilon=0.05)
        assert isinstance(s, ForwardDecaySum)
        p = make_decaying_sum(ForwardDecay("poly", 1.2), epsilon=0.05)
        assert isinstance(p, ForwardDecaySum)

    def test_factory_rejects_bad_horizon_hint(self):
        with pytest.raises(InvalidParameterError):
            make_decaying_sum(PolynomialDecay(1.0), horizon_hint=0)


class TestExactForwardSum:
    def test_agrees_with_block_engine(self):
        rng = random.Random(5)
        items = [
            StreamItem(rng.randrange(0, 400), rng.uniform(0.0, 4.0))
            for _ in range(200)
        ]
        for kind, rate in (("exp", 0.03), ("poly", 1.4)):
            fast = ForwardDecaySum(ForwardDecay(kind, rate))
            slow = ExactForwardSum(ForwardDecay(kind, rate))
            fast.ingest(items, until=500)
            slow.ingest(items, until=500)
            assert fast.query().value == pytest.approx(
                slow.query().value, rel=1e-9
            )

    def test_merge_and_storage(self):
        a = ExactForwardSum(ForwardDecay("exp", 0.1))
        b = ExactForwardSum(ForwardDecay("exp", 0.1))
        a.add(1.0)
        b.add(2.0)
        a.merge(b)
        assert a.query().value == pytest.approx(3.0)
        assert a.storage_report().buckets == 2


class TestForwardDecayAverage:
    def test_requires_forward_decay(self):
        with pytest.raises(InvalidParameterError):
            ForwardDecayAverage(ExponentialDecay(0.1))

    def test_empty_stream_raises(self):
        avg = ForwardDecayAverage(ForwardDecay("exp", 0.1))
        with pytest.raises(EmptyAggregateError):
            avg.query()

    def test_constant_stream_average_is_the_constant(self):
        avg = ForwardDecayAverage(ForwardDecay("poly", 1.2))
        for _ in range(10):
            avg.add(4.0)
            avg.advance(3)
        assert avg.query().value == pytest.approx(4.0, rel=1e-12)
        assert avg.items_observed == 10

    def test_order_insensitive_like_components(self):
        items = [(50, 2.0), (10, 8.0), (30, 5.0)]
        a = ForwardDecayAverage(ForwardDecay("exp", 0.05))
        b = ForwardDecayAverage(ForwardDecay("exp", 0.05))
        for when, value in items:
            a.add_at(when, value)
        for when, value in reversed(items):
            b.add_at(when, value)
        assert a.query().value == b.query().value

    def test_fully_decayed_average_raises(self):
        avg = ForwardDecayAverage(ForwardDecay("exp", 1.0))
        avg.add(3.0)
        avg.advance(100_000)
        with pytest.raises(EmptyAggregateError):
            avg.query()

    def test_negative_value_rejected(self):
        avg = ForwardDecayAverage(ForwardDecay("exp", 0.1))
        with pytest.raises(InvalidParameterError):
            avg.add(-1.0)
