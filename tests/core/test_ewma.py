"""Unit tests for the EWMA family (paper Eq. 1 and section 3.4)."""

import math
import random

import pytest

from repro.core.decay import ExponentialDecay, PolyexponentialDecay, PolynomialDecay
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.core.ewma import (
    EwmaRegister,
    ExponentialSum,
    PolyexpPipeline,
    PolyexponentialSum,
    QuantizedExponentialSum,
)
from repro.core.exact import ExactDecayingSum


class TestExponentialSum:
    def test_matches_exact_reference(self):
        lam = 0.05
        s = ExponentialSum(ExponentialDecay(lam))
        exact = ExactDecayingSum(ExponentialDecay(lam))
        rng = random.Random(0)
        for _ in range(400):
            if rng.random() < 0.5:
                v = rng.randint(1, 5)
                s.add(v)
                exact.add(v)
            s.advance(1)
            exact.advance(1)
        assert s.query().value == pytest.approx(exact.query().value, rel=1e-9)

    def test_recurrence_single_item(self):
        lam = 0.3
        s = ExponentialSum(ExponentialDecay(lam))
        s.add(1.0)
        s.advance(7)
        assert s.query().value == pytest.approx(math.exp(-lam * 7))

    def test_multi_step_advance_equals_repeated(self):
        a = ExponentialSum(ExponentialDecay(0.2))
        b = ExponentialSum(ExponentialDecay(0.2))
        a.add(3.0)
        b.add(3.0)
        a.advance(5)
        for _ in range(5):
            b.advance(1)
        assert a.query().value == pytest.approx(b.query().value)

    def test_requires_exponential_decay(self):
        with pytest.raises(InvalidParameterError):
            ExponentialSum(PolynomialDecay(1.0))

    def test_storage_grows_logarithmically(self):
        # Theta(log N): the register bits after N steps are O(log N).
        s = ExponentialSum(ExponentialDecay(0.1))
        s.add(1.0)
        s.advance(100)
        b100 = s.storage_report().per_stream_bits
        s.advance(10000 - 100)
        b10k = s.storage_report().per_stream_bits
        assert b10k > b100
        assert b10k < 4 * b100  # log-ish, not linear

    def test_rejects_negative(self):
        s = ExponentialSum(ExponentialDecay(0.1))
        with pytest.raises(InvalidParameterError):
            s.add(-1.0)
        with pytest.raises(InvalidParameterError):
            s.advance(-1)


class TestQuantizedExponentialSum:
    def test_bracket_contains_truth(self):
        lam = 0.02
        q = QuantizedExponentialSum(ExponentialDecay(lam), mantissa_bits=20)
        exact = ExactDecayingSum(ExponentialDecay(lam))
        for t in range(300):
            if t % 2 == 0:
                q.add(1.0)
                exact.add(1.0)
            q.advance(1)
            exact.advance(1)
        est = q.query()
        assert est.contains(exact.query().value)

    def test_more_bits_less_error(self):
        lam = 0.02

        def run(bits):
            q = QuantizedExponentialSum(ExponentialDecay(lam), mantissa_bits=bits)
            exact = ExactDecayingSum(ExponentialDecay(lam))
            for _ in range(500):
                q.add(1.0)
                exact.add(1.0)
                q.advance(1)
                exact.advance(1)
            true = exact.query().value
            return abs(q.query().value - true) / true

        assert run(24) < run(6)

    def test_rejects_zero_bits(self):
        with pytest.raises(InvalidParameterError):
            QuantizedExponentialSum(ExponentialDecay(0.1), mantissa_bits=0)


class TestEwmaRegister:
    def test_classic_update_formula(self):
        r = EwmaRegister(w=0.75)
        r.observe(4.0)  # first observation initializes
        assert r.value == 4.0
        r.observe(8.0)
        assert r.value == pytest.approx(0.25 * 8.0 + 0.75 * 4.0)

    def test_contribution_decays_geometrically(self):
        # An observation T updates ago contributes w**T of its value.
        w = 0.5
        r = EwmaRegister(w=w, initial=0.0)
        r.observe(1.0)
        for _ in range(10):
            r.observe(0.0)
        assert r.value == pytest.approx((1 - w) * w**10)

    def test_uninitialized_raises(self):
        with pytest.raises(EmptyAggregateError):
            EwmaRegister(0.5).value

    @pytest.mark.parametrize("w", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_weight(self, w):
        with pytest.raises(InvalidParameterError):
            EwmaRegister(w)


class TestPolyexpPipeline:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_moment_k_matches_exact(self, k):
        lam = 0.07
        pipe = PolyexpPipeline(k, lam)
        exact = ExactDecayingSum(PolyexponentialDecay(k, lam))
        rng = random.Random(k)
        for _ in range(250):
            if rng.random() < 0.3:
                pipe.add(2.0)
                exact.add(2.0)
            pipe.advance(1)
            exact.advance(1)
        assert pipe.moments()[k] == pytest.approx(exact.query().value, rel=1e-9)

    def test_combine_polynomial(self):
        # g(a) = (1 + a) * exp(-lam a) = (c0 + c1 a) e^{-lam a}.
        lam = 0.1
        pipe = PolyexpPipeline(1, lam)
        items = []
        t = 0
        rng = random.Random(7)
        for _ in range(100):
            if rng.random() < 0.5:
                pipe.add(1.0)
                items.append(t)
            pipe.advance(1)
            t += 1
        expected = sum((1 + (t - ti)) * math.exp(-lam * (t - ti)) for ti in items)
        assert pipe.combine([1.0, 1.0]) == pytest.approx(expected, rel=1e-9)

    def test_combine_rejects_high_degree(self):
        with pytest.raises(InvalidParameterError):
            PolyexpPipeline(1, 0.1).combine([1.0, 1.0, 1.0])

    def test_storage_scales_with_k(self):
        small = PolyexpPipeline(1, 0.1).storage_report().per_stream_bits
        large = PolyexpPipeline(5, 0.1).storage_report().per_stream_bits
        assert large == pytest.approx(3 * small, rel=0.01)


class TestPolyexponentialSum:
    def test_engine_protocol(self):
        g = PolyexponentialDecay(2, 0.05)
        s = PolyexponentialSum(g)
        exact = ExactDecayingSum(g)
        for t in range(150):
            if t % 5 == 0:
                s.add(1.0)
                exact.add(1.0)
            s.advance(1)
            exact.advance(1)
        assert s.query().value == pytest.approx(exact.query().value, rel=1e-9)
        assert s.decay is g

    def test_requires_polyexponential(self):
        with pytest.raises(InvalidParameterError):
            PolyexponentialSum(ExponentialDecay(0.1))
