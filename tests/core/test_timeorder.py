"""Unit tests for the out-of-order policy and bounded reordering."""

import random

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.timeorder import OutOfOrderPolicy, bounded_reorder
from repro.streams.generators import StreamItem


class TestOutOfOrderPolicy:
    def test_kind_validation(self):
        with pytest.raises(InvalidParameterError):
            OutOfOrderPolicy("ignore")
        with pytest.raises(InvalidParameterError):
            OutOfOrderPolicy("buffer", max_lateness=-1)
        with pytest.raises(InvalidParameterError):
            OutOfOrderPolicy("drop", max_lateness=5)

    def test_constructors(self):
        assert OutOfOrderPolicy.raising().kind == "raise"
        assert OutOfOrderPolicy.dropping().kind == "drop"
        buffered = OutOfOrderPolicy.buffered(7)
        assert buffered.kind == "buffer"
        assert buffered.max_lateness == 7
        assert OutOfOrderPolicy().kind == "raise"

    def test_ledger_accumulates(self):
        policy = OutOfOrderPolicy.dropping()
        assert policy.dropped_count == 0
        assert policy.dropped_weight == 0.0
        policy.note_dropped(2.5)
        policy.note_dropped(1.0)
        assert policy.dropped_count == 2
        assert policy.dropped_weight == 3.5

    def test_repr_names_the_window(self):
        assert "buffer" in repr(OutOfOrderPolicy.buffered(3))
        assert "max_lateness=3" in repr(OutOfOrderPolicy.buffered(3))
        assert "max_lateness" not in repr(OutOfOrderPolicy.dropping())


class TestBoundedReorder:
    def test_requires_buffer_policy(self):
        with pytest.raises(InvalidParameterError):
            list(bounded_reorder([], OutOfOrderPolicy.dropping()))

    def test_sorted_input_passes_through(self):
        items = [StreamItem(t, 1.0) for t in range(10)]
        policy = OutOfOrderPolicy.buffered(3)
        assert list(bounded_reorder(items, policy)) == items
        assert policy.dropped_count == 0

    def test_reorders_within_window(self):
        items = [
            StreamItem(2, 1.0),
            StreamItem(0, 2.0),
            StreamItem(1, 3.0),
            StreamItem(4, 4.0),
            StreamItem(3, 5.0),
        ]
        policy = OutOfOrderPolicy.buffered(4)
        out = list(bounded_reorder(items, policy))
        assert [i.time for i in out] == [0, 1, 2, 3, 4]
        assert policy.dropped_count == 0

    def test_items_beyond_window_dropped_onto_ledger(self):
        items = [
            StreamItem(10, 1.0),
            StreamItem(3, 2.5),  # 7 ticks behind a window of 2: dropped
            StreamItem(9, 1.0),  # 1 tick behind: reordered in
        ]
        policy = OutOfOrderPolicy.buffered(2)
        out = list(bounded_reorder(items, policy))
        assert [i.time for i in out] == [9, 10]
        assert policy.dropped_count == 1
        assert policy.dropped_weight == 2.5

    def test_equal_times_keep_arrival_order(self):
        items = [
            StreamItem(5, 1.0),
            StreamItem(5, 2.0),
            StreamItem(5, 3.0),
        ]
        out = list(bounded_reorder(items, OutOfOrderPolicy.buffered(1)))
        assert [i.value for i in out] == [1.0, 2.0, 3.0]

    def test_random_traces_match_stable_sort_of_survivors(self):
        rng = random.Random(9)
        for _ in range(20):
            window = rng.randrange(0, 12)
            items = [
                StreamItem(rng.randrange(0, 40), float(i))
                for i in range(rng.randrange(0, 60))
            ]
            policy = OutOfOrderPolicy.buffered(window)
            out = list(bounded_reorder(items, policy))
            # Output is non-decreasing in time...
            assert all(
                a.time <= b.time for a, b in zip(out, out[1:])
            )
            # ...and survivors + dropped partition the input.
            assert len(out) + policy.dropped_count == len(items)
