"""Unit tests for the Decaying Average Problem (paper section 2.2)."""

import random

import pytest

from repro.core.average import DecayingAverage
from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.core.exact import ExactDecayingSum


def exact_average(decay):
    return DecayingAverage(
        decay,
        numerator=ExactDecayingSum(decay),
        denominator=ExactDecayingSum(decay),
    )


class TestExactBackend:
    def test_constant_values_give_that_constant(self):
        avg = exact_average(PolynomialDecay(1.0))
        for _ in range(50):
            avg.add(7.0)
            avg.advance(1)
        assert avg.query().value == pytest.approx(7.0)

    def test_weighted_average_formula(self):
        g = PolynomialDecay(2.0)
        avg = exact_average(g)
        values = [(0, 10.0), (3, 2.0), (7, 6.0)]
        for t, v in values:
            avg.advance(t - avg.time)
            avg.add(v)
        avg.advance(12 - avg.time)
        num = sum(v * g.weight(12 - t) for t, v in values)
        den = sum(g.weight(12 - t) for t, _ in values)
        assert avg.query().value == pytest.approx(num / den)

    def test_recent_values_dominate(self):
        avg = exact_average(ExponentialDecay(0.5))
        avg.add(100.0)
        avg.advance(30)
        avg.add(1.0)
        assert avg.query().value < 2.0


class TestApproxBackend:
    @pytest.mark.parametrize(
        "decay",
        [PolynomialDecay(1.0), ExponentialDecay(0.05), SlidingWindowDecay(64)],
    )
    def test_bracket_contains_exact(self, decay):
        approx = DecayingAverage(decay, epsilon=0.1)
        exact = exact_average(decay)
        rng = random.Random(42)
        for _ in range(300):
            if rng.random() < 0.6:
                # 0/1 values keep the EH backend applicable for SLIWIN.
                v = float(rng.randint(0, 1))
                approx.add(v)
                exact.add(v)
            approx.advance(1)
            exact.advance(1)
        true = exact.query().value
        est = approx.query()
        assert est.contains(true)
        assert est.relative_error_vs(true) < 0.25


class TestErrors:
    def test_empty_average_raises(self):
        avg = exact_average(PolynomialDecay(1.0))
        with pytest.raises(EmptyAggregateError):
            avg.query()

    def test_fully_decayed_raises(self):
        avg = exact_average(SlidingWindowDecay(5))
        avg.add(1.0)
        avg.advance(50)
        with pytest.raises(EmptyAggregateError):
            avg.query()

    def test_rejects_negative_values(self):
        avg = exact_average(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            avg.add(-3.0)

    def test_rejects_shared_engine(self):
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            DecayingAverage(
                PolynomialDecay(1.0), numerator=engine, denominator=engine
            )

    def test_storage_report_combines(self):
        avg = exact_average(PolynomialDecay(1.0))
        avg.add(1.0)
        avg.advance(1)
        assert avg.storage_report().engine == "avg"
