"""Unit tests for Brown's exponential smoothing (paper section 3.4)."""

import math

import pytest

from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.core.forecasting import BrownSmoother


class TestMechanics:
    def test_initialization_on_first_observation(self):
        s = BrownSmoother(order=2, alpha=0.3)
        assert not s.initialized
        s.observe(5.0)
        assert s.initialized
        assert s.smoothed() == [5.0, 5.0]
        assert s.trend() == 0.0

    def test_stage_recurrence(self):
        s = BrownSmoother(order=2, alpha=0.5)
        s.observe(0.0)
        s.observe(4.0)
        # S1 = 0.5*4 + 0.5*0 = 2; S2 = 0.5*2 + 0.5*0 = 1.
        assert s.smoothed() == [2.0, 1.0]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BrownSmoother(order=0, alpha=0.5)
        with pytest.raises(InvalidParameterError):
            BrownSmoother(order=2, alpha=1.0)
        s = BrownSmoother(order=1, alpha=0.5)
        with pytest.raises(EmptyAggregateError):
            s.level()
        s.observe(1.0)
        with pytest.raises(InvalidParameterError):
            s.forecast(-1)


class TestPolyexponentialWeights:
    def test_kfold_smoothing_is_negative_binomial_weighted(self):
        # The weight of the observation j steps back in S_k is
        # C(j+k-1, k-1) * alpha**k' ... with w = 1 - alpha:
        # S_k(T) = sum_j C(j+k-1, k-1) * (1-w)**k * w**j * x_{T-j}
        # -- a polynomial in j times w**j: polyexponential decay (§3.4).
        alpha = 0.4
        w = 1.0 - alpha
        xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        s = BrownSmoother(order=3, alpha=alpha)
        # Zero-initialize by feeding a long zero prefix... instead compute
        # closed form including the initialization at xs[0].
        for x in xs:
            s.observe(x)
        # Direct recurrence reference.
        s1 = s2 = s3 = xs[0]
        for x in xs[1:]:
            s1 = alpha * x + w * s1
            s2 = alpha * s1 + w * s2
            s3 = alpha * s2 + w * s3
        assert s.smoothed() == pytest.approx([s1, s2, s3])
        # Weight check on a fresh smoother over an impulse stream: after the
        # first (initializing) zero, an impulse at lag j contributes
        # C(j+k-1, k-1) alpha^k w^j to S_k.
        for k in (1, 2, 3):
            lag = 4
            imp = BrownSmoother(order=k, alpha=alpha)
            imp.observe(0.0)  # initialize all stages at 0
            imp.observe(1.0)  # the impulse
            for _ in range(lag):
                imp.observe(0.0)
            expected = math.comb(lag + k - 1, k - 1) * alpha**k * w**lag
            assert imp.smoothed()[k - 1] == pytest.approx(expected)


class TestForecasting:
    def test_double_smoothing_converges_on_linear_trend(self):
        s = BrownSmoother(order=2, alpha=0.3)
        for t in range(300):
            s.observe(7.0 + 2.0 * t)
        assert s.trend() == pytest.approx(2.0, rel=1e-3)
        t_last = 299
        assert s.forecast(10) == pytest.approx(7.0 + 2.0 * (t_last + 10), rel=1e-3)

    def test_triple_smoothing_converges_on_quadratic(self):
        s = BrownSmoother(order=3, alpha=0.2)
        for t in range(2000):
            s.observe(1.0 + 0.5 * t + 0.25 * t * t)
        assert s.curvature() == pytest.approx(0.5, rel=0.05)
        t_last = 1999
        truth = 1.0 + 0.5 * (t_last + 5) + 0.25 * (t_last + 5) ** 2
        assert s.forecast(5) == pytest.approx(truth, rel=0.01)

    def test_single_smoothing_tracks_level(self):
        s = BrownSmoother(order=1, alpha=0.5)
        for _ in range(50):
            s.observe(42.0)
        assert s.forecast(3) == pytest.approx(42.0)

    def test_double_beats_single_on_trend(self):
        single = BrownSmoother(order=1, alpha=0.3)
        double = BrownSmoother(order=2, alpha=0.3)
        for t in range(200):
            single.observe(float(t))
            double.observe(float(t))
        truth = 199.0 + 10.0
        assert abs(double.forecast(10) - truth) < abs(single.forecast(10) - truth)
