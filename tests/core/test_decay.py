"""Unit tests for the decay-function family (paper sections 2-3)."""

import math

import pytest

from repro.core.decay import (
    DecayFunction,
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    NoDecay,
    PolyexponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
    TableDecay,
    check_ratio_nonincreasing,
)
from repro.core.errors import DecayFunctionError, InvalidParameterError


class TestExponentialDecay:
    def test_weight_values(self):
        g = ExponentialDecay(0.5)
        assert g.weight(0) == 1.0
        assert g.weight(2) == pytest.approx(math.exp(-1.0))

    def test_is_non_increasing(self):
        g = ExponentialDecay(0.1)
        weights = g.weights(range(100))
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_infinite_support(self):
        assert ExponentialDecay(1.0).support() is None

    def test_ratio_constant_hence_nonincreasing(self):
        assert ExponentialDecay(0.3).is_ratio_nonincreasing()
        # And the numeric checker agrees with the analytic override.
        assert check_ratio_nonincreasing(ExponentialDecay(0.3), 200)

    def test_weight_ratio_is_exponential_in_horizon(self):
        g = ExponentialDecay(0.1)
        assert g.weight_ratio(100) == pytest.approx(math.exp(10.0))

    @pytest.mark.parametrize("lam", [0.0, -1.0])
    def test_rejects_bad_lambda(self, lam):
        with pytest.raises(InvalidParameterError):
            ExponentialDecay(lam)

    def test_rejects_negative_age(self):
        with pytest.raises(InvalidParameterError):
            ExponentialDecay(1.0).weight(-1)


class TestSlidingWindowDecay:
    def test_step_shape(self):
        g = SlidingWindowDecay(5)
        assert [g.weight(a) for a in range(7)] == [1, 1, 1, 1, 1, 0, 0]

    def test_support_is_window_minus_one(self):
        assert SlidingWindowDecay(5).support() == 4
        assert SlidingWindowDecay(1).support() == 0

    def test_violates_ratio_condition(self):
        assert not SlidingWindowDecay(10).is_ratio_nonincreasing()
        assert not check_ratio_nonincreasing(SlidingWindowDecay(10), 100)

    def test_rejects_zero_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowDecay(0)


class TestPolynomialDecay:
    def test_shifted_form_matches_paper_example(self):
        # Section 5 example: weights 1, 1/4, 1/9, ... for ages 0, 1, 2, ...
        g = PolynomialDecay(2.0)
        assert [g.weight(a) for a in range(4)] == pytest.approx(
            [1.0, 0.25, 1 / 9, 1 / 16]
        )

    def test_ratio_nonincreasing(self):
        assert PolynomialDecay(1.0).is_ratio_nonincreasing()
        assert check_ratio_nonincreasing(PolynomialDecay(3.0), 500)

    def test_weights_get_closer_over_time(self):
        # The Figure 1 property: ratio of weights of two fixed items
        # approaches 1 as time passes.
        g = PolynomialDecay(1.0)
        earlier = [g.weight(a + 10) / g.weight(a) for a in (1, 10, 100, 1000)]
        assert all(x < y for x, y in zip(earlier, earlier[1:]))
        assert earlier[-1] > 0.98

    def test_weight_ratio_polynomial_in_horizon(self):
        g = PolynomialDecay(2.0)
        assert g.weight_ratio(99) == pytest.approx(100.0**2)

    def test_rejects_bad_alpha(self):
        with pytest.raises(InvalidParameterError):
            PolynomialDecay(0.0)


class TestPolyexponentialDecay:
    def test_k0_equals_exponential(self):
        g = PolyexponentialDecay(0, 0.5)
        e = ExponentialDecay(0.5)
        for a in range(10):
            assert g.weight(a) == pytest.approx(e.weight(a))

    def test_peak_location(self):
        g = PolyexponentialDecay(3, 0.5)
        weights = [g.weight(a) for a in range(30)]
        assert weights.index(max(weights)) == 6  # k / lam = 3 / 0.5

    def test_not_monotone_hence_not_wbmh(self):
        assert not PolyexponentialDecay(2, 0.1).is_ratio_nonincreasing()

    def test_age_zero(self):
        assert PolyexponentialDecay(0, 1.0).weight(0) == 1.0
        assert PolyexponentialDecay(2, 1.0).weight(0) == 0.0


class TestLinearAndLogDecay:
    def test_linear_ramp(self):
        g = LinearDecay(4)
        assert [g.weight(a) for a in range(6)] == pytest.approx(
            [1.0, 0.75, 0.5, 0.25, 0.0, 0.0]
        )
        assert g.support() == 3

    def test_linear_not_wbmh_applicable(self):
        assert not LinearDecay(10).is_ratio_nonincreasing()

    def test_log_decay_slower_than_any_polynomial(self):
        g = LogarithmicDecay()
        p = PolynomialDecay(0.5)
        # At large ages the log decay retains more weight.
        assert g.weight(10**6) > p.weight(10**6)

    def test_log_decay_wbmh_applicable(self):
        assert LogarithmicDecay().is_ratio_nonincreasing()
        assert check_ratio_nonincreasing(LogarithmicDecay(), 2000)


class TestTableDecay:
    def test_lookup_and_tail(self):
        g = TableDecay([1.0, 0.5, 0.25], tail=0.1)
        assert g.weight(1) == 0.5
        assert g.weight(10) == 0.1
        assert g.support() is None

    def test_zero_tail_support(self):
        g = TableDecay([1.0, 0.5, 0.0, 0.0])
        assert g.support() == 1

    def test_rejects_increasing_table(self):
        with pytest.raises(DecayFunctionError):
            TableDecay([0.5, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(DecayFunctionError):
            TableDecay([1.0, -0.1])

    def test_rejects_tail_above_last(self):
        with pytest.raises(DecayFunctionError):
            TableDecay([1.0, 0.2], tail=0.5)

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            TableDecay([])


class TestGaussianDecay:
    def test_weight_formula(self):
        from repro.core.decay import GaussianDecay

        g = GaussianDecay(10.0)
        assert g.weight(0) == 1.0
        assert g.weight(10) == pytest.approx(math.exp(-1.0))

    def test_faster_than_any_exponential_eventually(self):
        from repro.core.decay import GaussianDecay

        g = GaussianDecay(5.0)
        e = ExponentialDecay(2.0)  # very aggressive EXPD
        # Far out, the Gaussian tail is below even this exponential.
        assert g.weight(100) < e.weight(100)

    def test_not_wbmh_applicable(self):
        from repro.core.decay import GaussianDecay

        assert not GaussianDecay(5.0).is_ratio_nonincreasing()
        assert not check_ratio_nonincreasing(GaussianDecay(5.0), 50)

    def test_rejects_bad_sigma(self):
        from repro.core.decay import GaussianDecay

        with pytest.raises(InvalidParameterError):
            GaussianDecay(0.0)


class TestNoDecay:
    def test_constant(self):
        g = NoDecay()
        assert g.weight(0) == g.weight(10**9) == 1.0
        assert g.support() is None
        assert g.is_ratio_nonincreasing()


class TestHalfLifeAndHorizon:
    def test_expd_half_life(self):
        lam = math.log(2.0) / 50.0  # designed half-life 50
        assert ExponentialDecay(lam).half_life() == 50

    def test_polyd_half_life(self):
        # (a+1)^-1 halves at a = 1; (a+1)^-2 halves at ceil(sqrt(2)-1) = 1.
        assert PolynomialDecay(1.0).half_life() == 1
        assert PolynomialDecay(0.1).half_life() == 2**10 - 1

    def test_sliwin_half_life_is_cutoff(self):
        assert SlidingWindowDecay(10).half_life() == 10

    def test_no_decay_never_halves(self):
        assert NoDecay().half_life() is None

    def test_effective_horizon_expd(self):
        g = ExponentialDecay(0.1)
        h = g.effective_horizon(0.01)
        assert g.weight(h) < 0.01 <= g.weight(h - 1)

    def test_effective_horizon_bounded_support(self):
        g = SlidingWindowDecay(10)
        assert g.effective_horizon(0.5) == 10

    def test_effective_horizon_validation(self):
        with pytest.raises(InvalidParameterError):
            PolynomialDecay(1.0).effective_horizon(0.0)

    def test_matching_families_at_a_lag(self):
        # Pick lambda so EXPD matches POLYD(1) at the POLYD half-life.
        polyd = PolynomialDecay(1.0)
        lag = polyd.half_life()
        lam = math.log(2.0) / lag
        expd = ExponentialDecay(lam)
        assert expd.weight(lag) == pytest.approx(polyd.weight(lag), rel=1e-9)
        # Past the lag, POLYD retains more (the subexponential tail).
        assert polyd.weight(100 * lag) > expd.weight(100 * lag)


class TestRatioChecker:
    def test_detects_increase_with_age(self):
        class Bad(DecayFunction):
            def weight(self, age):
                self._check_age(age)
                return float(age)

        with pytest.raises(DecayFunctionError):
            check_ratio_nonincreasing(Bad(), 10)

    def test_zero_tail_is_fine(self):
        # TableDecay hitting zero and staying there: ratio check passes on
        # the region up to the first zero only.
        g = TableDecay([1.0, 1.0, 0.0])
        # weight 1 -> 0 at age 2: the ratio jumps to infinity after finite
        # ratios -> violation.
        assert not check_ratio_nonincreasing(g, 10)

    def test_describe_strings(self):
        assert "EXPD" in ExponentialDecay(1.0).describe()
        assert "SLIWIN" in SlidingWindowDecay(2).describe()
        assert "POLYD" in PolynomialDecay(1.0).describe()
