"""Tests for general polyexponential-polynomial decay (§3.4 in full)."""

import random

import pytest

from repro.core.decay import PolyExpPolynomialDecay, PolynomialDecay
from repro.core.errors import DecayFunctionError, InvalidParameterError
from repro.core.ewma import GeneralPolyexpSum
from repro.core.exact import ExactDecayingSum
from repro.histograms.wbmh import WBMH


class TestDecayFunction:
    def test_weight_formula(self):
        g = PolyExpPolynomialDecay([1.0, 2.0], lam=0.5)
        import math

        for a in (0, 1, 5):
            assert g.weight(a) == pytest.approx((1 + 2 * a) * math.exp(-0.5 * a))

    def test_degree_zero_is_expd(self):
        from repro.core.decay import ExponentialDecay

        g = PolyExpPolynomialDecay([3.0], lam=0.2)
        e = ExponentialDecay(0.2)
        for a in range(10):
            assert g.weight(a) == pytest.approx(3.0 * e.weight(a))
        assert g.is_ratio_nonincreasing()

    def test_rising_profile_not_wbmh_applicable(self):
        g = PolyExpPolynomialDecay([0.0, 1.0], lam=0.1)
        assert not g.is_ratio_nonincreasing()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            PolyExpPolynomialDecay([], 0.1)
        with pytest.raises(InvalidParameterError):
            PolyExpPolynomialDecay([1.0], 0.0)
        with pytest.raises(InvalidParameterError):
            PolyExpPolynomialDecay([0.0, 0.0], 0.1)
        with pytest.raises(DecayFunctionError):
            PolyExpPolynomialDecay([1.0, -2.0], 0.1)


class TestEngine:
    @pytest.mark.parametrize(
        "coeffs",
        [[1.0], [1.0, 1.0], [0.5, 0.0, 0.25], [2.0, 1.0, 0.5, 0.1]],
        ids=["deg0", "deg1", "deg2", "deg3"],
    )
    def test_matches_exact(self, coeffs):
        decay = PolyExpPolynomialDecay(coeffs, lam=0.08)
        engine = GeneralPolyexpSum(decay)
        exact = ExactDecayingSum(decay)
        rng = random.Random(7)
        for _ in range(400):
            if rng.random() < 0.4:
                v = rng.uniform(0.5, 3.0)
                engine.add(v)
                exact.add(v)
            engine.advance(1)
            exact.advance(1)
        assert engine.query().value == pytest.approx(
            exact.query().value, rel=1e-9
        )

    def test_constant_work_storage_scales_with_degree(self):
        small = GeneralPolyexpSum(PolyExpPolynomialDecay([1.0], 0.1))
        large = GeneralPolyexpSum(PolyExpPolynomialDecay([1.0] * 5, 0.1))
        for e in (small, large):
            e.add(1.0)
            e.advance(10)
        sb = small.storage_report().per_stream_bits
        lb = large.storage_report().per_stream_bits
        assert lb == pytest.approx(5 * sb, rel=0.01)

    def test_requires_matching_decay(self):
        with pytest.raises(InvalidParameterError):
            GeneralPolyexpSum(PolynomialDecay(1.0))


class TestWBMHQueryDecay:
    def test_bracket_valid_for_other_decay(self):
        # Build the lattice for POLYD(1), query POLYD(2) -- faster decay,
        # so brackets may widen but must stay valid.
        base = PolynomialDecay(1.0)
        other = PolynomialDecay(2.0)
        w = WBMH(base, 0.1)
        exact = ExactDecayingSum(other)
        rng = random.Random(9)
        for _ in range(800):
            if rng.random() < 0.5:
                w.add(1)
                exact.add(1)
            w.advance(1)
            exact.advance(1)
        est = w.query_decay(other)
        assert est.contains(exact.query().value)

    def test_slower_decay_keeps_tight_bracket(self):
        # POLYD(0.5) varies more slowly than the POLYD(1) lattice, so the
        # bracket stays within the histogram's epsilon.
        base = PolynomialDecay(1.0)
        other = PolynomialDecay(0.5)
        w = WBMH(base, 0.1)
        exact = ExactDecayingSum(other)
        for _ in range(800):
            w.add(1)
            exact.add(1)
            w.advance(1)
            exact.advance(1)
        est = w.query_decay(other)
        true = exact.query().value
        assert est.contains(true)
        assert est.relative_error_vs(true) <= 0.1
