"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main, parse_decay
from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    NoDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.streams.generators import StreamItem
from repro.streams.io import write_csv, write_jsonl


class TestParseDecay:
    @pytest.mark.parametrize(
        "spec,cls",
        [
            ("expd:0.1", ExponentialDecay),
            ("sliwin:100", SlidingWindowDecay),
            ("polyd:2.0", PolynomialDecay),
            ("linear:50", LinearDecay),
            ("logd", LogarithmicDecay),
            ("logd:4", LogarithmicDecay),
            ("none", NoDecay),
            ("POLYD:1", PolynomialDecay),  # case-insensitive
        ],
    )
    def test_valid_specs(self, spec, cls):
        assert isinstance(parse_decay(spec), cls)

    @pytest.mark.parametrize("spec", ["magic:1", "expd:abc", "polyd", "sliwin:x"])
    def test_invalid_specs(self, spec):
        with pytest.raises(InvalidParameterError):
            parse_decay(spec)


class TestCommands:
    def test_decays_lists_families(self, capsys):
        assert main(["decays"]) == 0
        out = capsys.readouterr().out
        for token in ("expd", "sliwin", "polyd", "logd"):
            assert token in out

    def test_estimate_csv(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([StreamItem(0, 1.0), StreamItem(5, 2.0)], path)
        rc = main([
            "estimate", "--decay", "polyd:1.0", "--epsilon", "0.1",
            "--input", str(path), "--until", "20",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimate" in out and "storage bits" in out
        assert "POLYD" in out

    def test_estimate_exact_engine_matches_math(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        write_jsonl([StreamItem(0, 1.0)], path)
        rc = main([
            "estimate", "--decay", "sliwin:10", "--input", str(path),
            "--engine", "exact", "--until", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "estimate     : 1" in out

    def test_estimate_unsorted_needs_flag(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([StreamItem(5, 1.0), StreamItem(1, 1.0)], path)
        rc = main(["estimate", "--decay", "none", "--input", str(path)])
        assert rc == 2
        assert "sort" in capsys.readouterr().err
        rc = main(["estimate", "--decay", "none", "--input", str(path), "--sort"])
        assert rc == 0

    def test_estimate_missing_file(self, capsys):
        rc = main(["estimate", "--decay", "none", "--input", "/nope.csv"])
        assert rc == 2

    def test_figure1(self, capsys):
        assert main(["figure1", "--alpha", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "L1 rating" in out
        assert "POLYD" in out

    def test_storage(self, capsys):
        assert main([
            "storage", "--decay", "polyd:1.0", "--sizes", "256,1024",
            "--epsilon", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "wbmh" in out and "ceh" in out and "exact" in out

    def test_bad_decay_returns_error_code(self, capsys):
        rc = main(["storage", "--decay", "bogus:1", "--sizes", "64"])
        assert rc == 2
        assert "unknown decay" in capsys.readouterr().err

    def test_sample(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([StreamItem(t, float(t)) for t in range(30)], path)
        rc = main([
            "sample", "--decay", "polyd:1.0", "--input", str(path),
            "--n", "3", "--until", "35",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("t=") for line in lines)

    def test_sample_empty_trace_errors(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([], path)
        rc = main(["sample", "--decay", "polyd:1.0", "--input", str(path)])
        assert rc == 2

    def test_moments(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([StreamItem(t, float(t % 7)) for t in range(50)], path)
        rc = main([
            "moments", "--decay", "expd:0.05", "--input", str(path),
            "--until", "55",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decayed mean" in out
        assert "kurtosis" in out

    def test_moments_constant_stream_degenerate(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        write_csv([StreamItem(t, 5.0) for t in range(10)], path)
        rc = main(["moments", "--decay", "none", "--input", str(path)])
        assert rc == 0
        assert "undefined" in capsys.readouterr().out
