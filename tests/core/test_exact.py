"""Unit tests for the exact reference engine."""

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum


class TestBasics:
    def test_empty_stream(self):
        s = ExactDecayingSum(PolynomialDecay(1.0))
        assert s.query().value == 0.0
        s.advance(100)
        assert s.query().value == 0.0

    def test_single_item_weight(self):
        g = PolynomialDecay(2.0)
        s = ExactDecayingSum(g)
        s.add(3.0)
        s.advance(4)
        assert s.query().value == pytest.approx(3.0 * g.weight(4))

    def test_same_time_items_coalesce(self):
        s = ExactDecayingSum(PolynomialDecay(1.0))
        s.add(1.0)
        s.add(2.0)
        assert s.items_observed == 2
        assert s.storage_report().buckets == 1
        assert s.query().value == pytest.approx(3.0)

    def test_query_is_exact_estimate(self):
        s = ExactDecayingSum(ExponentialDecay(0.1))
        s.add(1.0)
        s.advance(3)
        est = s.query()
        assert est.lower == est.value == est.upper

    def test_rejects_negative_value_and_steps(self):
        s = ExactDecayingSum(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            s.add(-1.0)
        with pytest.raises(InvalidParameterError):
            s.advance(-2)


class TestExpiry:
    def test_window_items_expire(self):
        s = ExactDecayingSum(SlidingWindowDecay(10))
        for _ in range(50):
            s.add(1.0)
            s.advance(1)
        # After the final advance the clock sits at T=50 with items at ages
        # 1..50; the window covers ages 0..9, i.e. the 9 items t=41..49.
        assert s.query().value == pytest.approx(9.0)
        assert s.storage_report().buckets <= 11

    def test_infinite_support_retains_everything(self):
        s = ExactDecayingSum(PolynomialDecay(1.0))
        for _ in range(100):
            s.add(1.0)
            s.advance(1)
        assert s.storage_report().buckets == 100

    def test_storage_linear_in_elapsed_time(self):
        # The Omega(N) baseline of Lemma 3.2.
        s = ExactDecayingSum(PolynomialDecay(1.0))
        sizes = []
        for n in (100, 200, 400):
            while s.time < n:
                s.add(1.0)
                s.advance(1)
            sizes.append(s.storage_report().per_stream_bits)
        assert sizes[2] - sizes[1] > 0.9 * (sizes[1] - sizes[0])


class TestQueryAtAgeOffset:
    def test_offset_matches_future_advance(self):
        g = PolynomialDecay(1.5)
        a = ExactDecayingSum(g)
        b = ExactDecayingSum(g)
        for t in range(30):
            if t % 3:
                a.add(2.0)
                b.add(2.0)
            a.advance(1)
            b.advance(1)
        future = a.query_at_age_offset(17)
        b.advance(17)
        assert future == pytest.approx(b.query().value)

    def test_rejects_negative_offset(self):
        s = ExactDecayingSum(PolynomialDecay(1.0))
        with pytest.raises(InvalidParameterError):
            s.query_at_age_offset(-1)
