"""Unit tests for the engine factory (paper-guided engine selection)."""

import pytest

from repro.core.decay import (
    ExponentialDecay,
    LinearDecay,
    LogarithmicDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import InvalidParameterError
from repro.core.ewma import ExponentialSum
from repro.core.interfaces import DecayingSum, make_decaying_sum
from repro.histograms.ceh import CascadedEH
from repro.histograms.eh import SlidingWindowSum
from repro.histograms.wbmh import WBMH


class TestFactorySelection:
    def test_expd_gets_single_register(self):
        assert isinstance(make_decaying_sum(ExponentialDecay(0.1)), ExponentialSum)

    def test_sliwin_gets_eh(self):
        assert isinstance(make_decaying_sum(SlidingWindowDecay(100)), SlidingWindowSum)

    def test_polyd_gets_wbmh(self):
        assert isinstance(make_decaying_sum(PolynomialDecay(2.0)), WBMH)

    def test_log_decay_gets_wbmh(self):
        assert isinstance(make_decaying_sum(LogarithmicDecay()), WBMH)

    def test_linear_decay_gets_ceh(self):
        # Linear decay violates the WBMH ratio condition.
        assert isinstance(make_decaying_sum(LinearDecay(50)), CascadedEH)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(InvalidParameterError):
            make_decaying_sum(PolynomialDecay(1.0), epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            make_decaying_sum(PolynomialDecay(1.0), epsilon=1.0)


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "decay",
        [
            ExponentialDecay(0.1),
            SlidingWindowDecay(32),
            PolynomialDecay(1.0),
            LinearDecay(32),
        ],
    )
    def test_engines_implement_protocol(self, decay):
        engine = make_decaying_sum(decay, epsilon=0.1)
        assert isinstance(engine, DecayingSum)
        assert engine.time == 0
        engine.add(1.0)
        engine.advance(3)
        assert engine.time == 3
        est = engine.query()
        assert est.lower <= est.value <= est.upper
        report = engine.storage_report()
        assert report.per_stream_bits > 0
