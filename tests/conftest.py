"""Shared test helpers: engine driving and reference computation."""

from __future__ import annotations

import pytest

from repro.core.exact import ExactDecayingSum


def drive_pair(engine, decay, items, *, until=None):
    """Drive engine and an exact reference over ``(t, value)`` pairs.

    Returns ``(engine, exact)`` advanced to ``until`` (or the last arrival).
    """
    exact = ExactDecayingSum(decay)
    for t, v in items:
        for e in (engine, exact):
            if t > e.time:
                e.advance(t - e.time)
            e.add(v)
    if until is not None:
        for e in (engine, exact):
            if until > e.time:
                e.advance(until - e.time)
    return engine, exact


def assert_estimate_ok(est, true, *, rel=None, msg=""):
    """Bracket must contain truth; optional relative-error cap."""
    assert est.lower <= est.upper, msg
    assert est.contains(true), f"{msg}: bracket [{est.lower}, {est.upper}] misses {true}"
    if rel is not None and true > 0:
        err = abs(est.value - true) / true
        assert err <= rel, f"{msg}: rel error {err} > {rel}"


@pytest.fixture
def rng_seed():
    return 12345
