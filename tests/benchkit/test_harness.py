"""Unit tests for the accuracy-sweep harness."""

import math

import pytest

from repro.benchkit.harness import AccuracyResult, growth_exponent, measure_accuracy
from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError, TimeOrderError
from repro.core.exact import ExactDecayingSum
from repro.histograms.wbmh import WBMH
from repro.streams.generators import StreamItem, bernoulli_stream


class TestMeasureAccuracy:
    def test_exact_engine_reports_zero_error(self):
        decay = PolynomialDecay(1.0)
        items = list(bernoulli_stream(300, 0.5, seed=1))
        res = measure_accuracy(
            lambda: ExactDecayingSum(decay), decay, items, query_every=17
        )
        assert isinstance(res, AccuracyResult)
        assert res.max_rel_error == 0.0
        assert res.bracket_violations == 0
        assert res.queries > 5

    def test_approx_engine_within_epsilon(self):
        decay = PolynomialDecay(1.0)
        items = list(bernoulli_stream(500, 0.5, seed=2))
        res = measure_accuracy(
            lambda: WBMH(decay, 0.2), decay, items, query_every=31, until=550
        )
        assert res.max_rel_error <= 0.2
        assert res.mean_rel_error <= res.max_rel_error
        assert res.per_stream_bits > 0

    def test_until_extends_queries(self):
        decay = PolynomialDecay(1.0)
        items = [StreamItem(0, 1.0)]
        res = measure_accuracy(
            lambda: ExactDecayingSum(decay), decay, items,
            query_every=10, until=100,
        )
        assert res.queries >= 10

    def test_rejects_bad_stride(self):
        with pytest.raises(InvalidParameterError):
            measure_accuracy(
                lambda: ExactDecayingSum(PolynomialDecay(1.0)),
                PolynomialDecay(1.0),
                [],
                query_every=0,
            )

    def test_rejects_unsorted_trace_up_front(self):
        decay = PolynomialDecay(1.0)
        items = [StreamItem(5, 1.0), StreamItem(2, 1.0)]
        with pytest.raises(TimeOrderError):
            measure_accuracy(lambda: ExactDecayingSum(decay), decay, items)

    def test_rejects_trace_past_the_horizon(self):
        decay = PolynomialDecay(1.0)
        items = [StreamItem(0, 1.0), StreamItem(80, 1.0)]
        with pytest.raises(InvalidParameterError):
            measure_accuracy(
                lambda: ExactDecayingSum(decay), decay, items, until=50
            )

    def test_zero_queries_reports_nan_not_zero(self):
        # The stream never exceeds min_true, so no query lands; a 0.0 mean
        # would masquerade as perfect accuracy.
        decay = PolynomialDecay(1.0)
        res = measure_accuracy(
            lambda: ExactDecayingSum(decay), decay, [], until=10
        )
        assert res.queries == 0
        assert math.isnan(res.mean_rel_error)


class TestGrowthExponent:
    def test_linear_series(self):
        xs = [10, 100, 1000]
        assert growth_exponent(xs, [3 * x for x in xs]) == pytest.approx(1.0)

    def test_quadratic_series(self):
        xs = [10, 100, 1000]
        assert growth_exponent(xs, [x * x for x in xs]) == pytest.approx(2.0)

    def test_logarithmic_series_has_small_slope(self):
        xs = [2**k for k in range(4, 16)]
        slope = growth_exponent(xs, [math.log2(x) for x in xs])
        assert slope < 0.4

    def test_needs_two_points(self):
        with pytest.raises(InvalidParameterError):
            growth_exponent([10], [5])
        with pytest.raises(InvalidParameterError):
            growth_exponent([10, 10], [5, 7])
