"""Unit tests for the throughput baseline module (schema and semantics).

Timing *numbers* are benchmark territory (benchmarks/); tier-1 only checks
that the machinery measures the right thing: fresh engines per run, valid
JSON schema, both modes leaving bit-identical engine state.
"""

import json

import pytest

from repro.benchkit.throughput import (
    SCHEMA_VERSION,
    Phases,
    ThroughputResult,
    default_engines,
    default_traces,
    eh_bulk_speedup,
    histogram_phase_breakdown,
    measure_throughput,
    numpy_dense_baseline,
    run_suite,
    validate_report,
    wbmh_advance_speedup,
    write_report,
)
from repro.core.decay import PolynomialDecay
from repro.core.errors import InvalidParameterError
from repro.core.exact import ExactDecayingSum


class TestMeasureThroughput:
    def test_measures_both_modes(self):
        items = list(default_traces(200)["dense"])
        for mode in ("batched", "item"):
            res = measure_throughput(
                lambda: ExactDecayingSum(PolynomialDecay(1.0)),
                items,
                engine_name="exact",
                trace_name="dense",
                mode=mode,
            )
            assert isinstance(res, ThroughputResult)
            assert res.items == len(items)
            assert res.items_per_sec > 0
            assert res.mode == mode

    def test_modes_leave_identical_engine_state(self):
        items = list(default_traces(300)["bursty"])
        engines = {}
        for mode in ("batched", "item"):
            captured = []

            def factory():
                engine = ExactDecayingSum(PolynomialDecay(1.0))
                captured.append(engine)
                return engine

            measure_throughput(factory, items, mode=mode)
            engines[mode] = captured[-1]
        a, b = engines["batched"], engines["item"]
        assert a.time == b.time
        assert a.query().value == b.query().value

    def test_rejects_unknown_mode_and_bad_repeats(self):
        with pytest.raises(InvalidParameterError):
            measure_throughput(
                lambda: ExactDecayingSum(PolynomialDecay(1.0)), [], mode="warp"
            )
        with pytest.raises(InvalidParameterError):
            measure_throughput(
                lambda: ExactDecayingSum(PolynomialDecay(1.0)), [], repeats=0
            )


class TestDefaults:
    def test_five_acceptance_engines(self):
        engines = default_engines()
        names = " ".join(engines)
        for token in ("exact", "ewma", "eh", "ceh", "wbmh"):
            assert token in names
        for factory in engines.values():
            engine = factory()
            engine.add_batch([1.0, 2.0])
            assert engine.query().value >= 0.0

    def test_two_trace_shapes_with_requested_items(self):
        traces = default_traces(500)
        assert len(traces) >= 2
        for items in traces.values():
            assert len(items) == 500
            times = [item.time for item in items]
            assert times == sorted(times)

    def test_bursty_trace_has_same_tick_batches(self):
        bursty = default_traces(400)["bursty"]
        per_tick = {}
        for item in bursty:
            per_tick[item.time] = per_tick.get(item.time, 0) + 1
        assert max(per_tick.values()) > 1


class TestEhBulkSpeedup:
    def test_reports_positive_speedup_fields(self):
        res = eh_bulk_speedup(5_000)
        assert res["value"] == 5_000.0
        assert res["bulk_seconds"] > 0
        assert res["unary_seconds"] > 0
        assert res["speedup"] > 1.0

    def test_rejects_non_positive_value(self):
        with pytest.raises(InvalidParameterError):
            eh_bulk_speedup(0)


class TestReportSchema:
    def test_suite_report_validates_and_round_trips(self, tmp_path):
        report = run_suite(300, bulk_value=2_000, repeats=1, advance_events=5, advance_max_gap=500)
        assert report["schema_version"] == SCHEMA_VERSION
        path = write_report(report, tmp_path / "BENCH_throughput.json")
        loaded = json.loads(path.read_text())
        validate_report(loaded)
        assert loaded["n_items"] == 300

    def test_validate_rejects_missing_pieces(self):
        report = run_suite(100, bulk_value=500, repeats=1, advance_events=5, advance_max_gap=500)
        bad = dict(report)
        bad["schema_version"] = 99
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        del bad["eh_bulk"]
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        bad["results"] = [dict(report["results"][0], items_per_sec=0.0)]
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        bad["results"] = [
            row
            for row in report["results"]
            if not (row["engine"].startswith("wbmh") and row["mode"] == "batched")
        ]
        with pytest.raises(InvalidParameterError):
            validate_report(bad)


class TestSchemaV2Fields:
    def test_report_carries_ratios_and_python_version(self):
        import platform

        report = run_suite(
            200, bulk_value=500, repeats=1, advance_events=5,
            advance_max_gap=500,
        )
        assert report["python_version"] == platform.python_version()
        cells = {
            (r["engine"], r["trace"]): r["batched_over_item"]
            for r in report["speedups"]
        }
        for engine in report["engines"]:
            for trace in report["traces"]:
                assert cells[(engine, trace)] > 0
        for key in ("total_ticks", "skip_seconds", "unit_seconds", "speedup"):
            assert report["wbmh_advance"][key] > 0
        numpy_baseline = report["numpy_baseline"]
        assert numpy_baseline["items_per_sec"] > 0
        assert set(numpy_baseline["headroom"]) == set(report["engines"])

    def test_validate_rejects_missing_v2_pieces(self):
        report = run_suite(
            100, bulk_value=500, repeats=1, advance_events=5,
            advance_max_gap=500,
        )
        for key in ("python_version", "speedups", "wbmh_advance",
                    "numpy_baseline"):
            bad = dict(report)
            del bad[key]
            with pytest.raises(InvalidParameterError):
                validate_report(bad)
        bad = dict(report)
        bad["speedups"] = []
        with pytest.raises(InvalidParameterError):
            validate_report(bad)


class TestPhaseBreakdown:
    def test_covers_every_histogram_engine_and_phase(self):
        section = histogram_phase_breakdown(400)
        assert set(section["engines"]) == {
            "eh(SLIWIN-512)",
            "ceh(POLYD-1)",
            "wbmh(POLYD-1)",
        }
        covered = {}
        for row in section["rows"]:
            covered.setdefault(row["engine"], set()).add(row["phase"])
            assert row["seconds"] >= 0
            assert 0 <= row["share"] <= 1
        for engine in section["engines"]:
            assert covered[engine] == set(Phases)

    def test_shares_partition_the_loop(self):
        section = histogram_phase_breakdown(400)
        totals = {}
        for row in section["rows"]:
            totals[row["engine"]] = totals.get(row["engine"], 0.0) + row["share"]
        for engine, total in totals.items():
            # The add phase is the clamped remainder, so the four shares
            # can only undershoot 1 (by timer jitter), never overshoot.
            assert 0.5 < total <= 1.0 + 1e-9, engine

    def test_timers_are_unpatched_afterwards(self):
        from repro.histograms.eh import ExponentialHistogram
        from repro.histograms.wbmh import WBMH

        before = (ExponentialHistogram._cascade, WBMH._seal)
        histogram_phase_breakdown(50)
        assert (ExponentialHistogram._cascade, WBMH._seal) == before

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            histogram_phase_breakdown(0)
        with pytest.raises(InvalidParameterError):
            histogram_phase_breakdown(100, query_every=0)

    def test_validate_rejects_broken_phase_sections(self):
        report = run_suite(
            100, bulk_value=500, repeats=1, advance_events=5,
            advance_max_gap=500,
        )
        bad = dict(report)
        del bad["phases"]
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        bad["phases"] = dict(report["phases"], rows=[])
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        rows = [dict(r) for r in report["phases"]["rows"]]
        rows[0]["phase"] = "mystery"
        bad["phases"] = dict(report["phases"], rows=rows)
        with pytest.raises(InvalidParameterError):
            validate_report(bad)
        bad = dict(report)
        rows = [
            dict(r)
            for r in report["phases"]["rows"]
            if not (r["engine"].startswith("wbmh") and r["phase"] == "expire")
        ]
        bad["phases"] = dict(report["phases"], rows=rows)
        with pytest.raises(InvalidParameterError):
            validate_report(bad)


class TestWbmhAdvanceSpeedup:
    def test_states_identical_and_fields_positive(self):
        res = wbmh_advance_speedup(n_events=5, max_gap=500)
        assert res["total_ticks"] > 0
        assert res["skip_seconds"] > 0
        assert res["unit_seconds"] > 0
        assert res["speedup"] > 0

    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidParameterError):
            wbmh_advance_speedup(n_events=0)
        with pytest.raises(InvalidParameterError):
            wbmh_advance_speedup(max_gap=1)


class TestNumpyDenseBaseline:
    def test_matches_exact_engine(self):
        items = list(default_traces(300)["dense"])
        res = numpy_dense_baseline(items, repeats=1)
        engine = ExactDecayingSum(PolynomialDecay(1.0))
        engine.ingest(items)
        assert res["query_value"] == pytest.approx(engine.query().value)
        assert res["items_per_sec"] > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(InvalidParameterError):
            numpy_dense_baseline(list(default_traces(50)["dense"]), repeats=0)
