"""Unit tests for the table/series formatters."""

import pytest

from repro.benchkit.reporting import banner, format_series, format_table
from repro.core.errors import InvalidParameterError


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # fixed width

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]], precision=3)
        assert "0.123" in text

    def test_scientific_for_extremes(self):
        text = format_table(["x"], [[1.5e9], [1.5e-9]])
        assert "e+09" in text and "e-09" in text

    def test_zero_and_bool(self):
        text = format_table(["a", "b"], [[0.0, True]])
        assert "0" in text and "True" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(InvalidParameterError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestSeriesAndBanner:
    def test_series_line(self):
        line = format_series("errs", [0.1, 0.25], precision=2)
        assert line.startswith("errs:")
        assert "0.10" in line and "0.25" in line

    def test_banner_contains_title(self):
        text = banner("My Experiment")
        assert "My Experiment" in text
        assert text.count("=") >= 2 * len("My Experiment")
