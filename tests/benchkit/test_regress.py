"""Unit tests for the throughput-regression gate (repro.benchkit.regress).

The gate's contract: compare a fresh BENCH_throughput.json against the
checked-in baseline cell by cell, fail (exit 1) when any cell drops more
than the threshold, pass otherwise. The end-to-end behaviour -- including
that an injected 50% slowdown actually flips the exit status -- is pinned
through a real subprocess, since that is exactly how CI invokes it.
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.benchkit.regress import (
    DEFAULT_THRESHOLD,
    MAX_HISTOGRAM_HEADROOM,
    MIN_FORWARD_RATIO,
    MIN_SHARD_SPEEDUP,
    check_forward_fastest,
    check_histogram_headroom,
    check_schema_lag,
    check_shard_speedup,
    compare_reports,
    format_diff,
    load_report,
    main,
)
from repro.core.errors import InvalidParameterError
from repro.lintkit import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]


def small_report() -> dict:
    """A minimal results matrix; regress ignores every other field."""
    rows = []
    for engine in ("eh", "wbmh"):
        for trace in ("dense", "bursty"):
            for mode in ("batched", "item"):
                rows.append(
                    {
                        "engine": engine,
                        "trace": trace,
                        "mode": mode,
                        "items": 1000,
                        "seconds": 0.01,
                        "items_per_sec": 100_000.0,
                    }
                )
    return {"schema_version": 2, "results": rows}


def scaling_section(cpu_count: int, speedup_at_4: float) -> dict:
    """A minimal schema-v3 scaling section for gate tests."""
    rows = []
    for shards, speedup in ((1, 1.0), (4, speedup_at_4)):
        rows.append(
            {
                "engine": "ewma(EXPD-0.01)",
                "shards": shards,
                "seconds": 0.01,
                "items_per_sec": 100_000.0 * speedup,
                "speedup_vs_serial": speedup,
            }
        )
    return {
        "cpu_count": cpu_count,
        "n_items": 20_000,
        "shard_counts": [1, 4],
        "rows": rows,
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        diffs = compare_reports(small_report(), small_report())
        assert diffs and not any(d.regressed for d in diffs)
        assert all(d.ratio == 1.0 for d in diffs)

    def test_injected_50_percent_slowdown_fails(self):
        fresh = small_report()
        fresh["results"][0]["items_per_sec"] = 50_000.0
        diffs = compare_reports(small_report(), fresh)
        bad = [d for d in diffs if d.regressed]
        assert len(bad) == 1
        assert bad[0].ratio == pytest.approx(0.5)

    def test_drop_inside_threshold_passes(self):
        fresh = small_report()
        for row in fresh["results"]:
            row["items_per_sec"] = 80_000.0  # -20%, under the 30% gate
        diffs = compare_reports(small_report(), fresh)
        assert not any(d.regressed for d in diffs)

    def test_vanished_cell_fails_new_cell_passes(self):
        fresh = small_report()
        dropped = fresh["results"].pop(0)
        fresh["results"].append(
            dict(dropped, engine="brand-new-engine")
        )
        diffs = compare_reports(small_report(), fresh)
        bad = [d for d in diffs if d.regressed]
        assert len(bad) == 1
        assert bad[0].fresh_ips is None  # the vanished one
        new = [d for d in diffs if d.baseline_ips is None]
        assert len(new) == 1 and not new[0].regressed

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            compare_reports(small_report(), small_report(), threshold=0.0)
        with pytest.raises(InvalidParameterError):
            compare_reports(small_report(), small_report(), threshold=1.0)

    def test_malformed_rows_rejected(self):
        bad = small_report()
        bad["results"][0] = {"engine": "eh"}
        with pytest.raises(InvalidParameterError):
            compare_reports(bad, small_report())
        bad = small_report()
        bad["results"][0]["items_per_sec"] = 0.0
        with pytest.raises(InvalidParameterError):
            compare_reports(small_report(), bad)


class TestLoadReport:
    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_report(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(InvalidParameterError):
            load_report(bad)
        no_results = tmp_path / "empty.json"
        no_results.write_text("{}")
        with pytest.raises(InvalidParameterError):
            load_report(no_results)

    def test_older_schema_baseline_still_comparable(self, tmp_path):
        """Schema bumps must not orphan checked-in baselines: the
        comparison only reads the results matrix."""
        old = small_report()
        old["schema_version"] = 1
        path = tmp_path / "old.json"
        path.write_text(json.dumps(old))
        assert load_report(path)["schema_version"] == 1


class TestMainInProcess:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return path

    def test_exit_0_on_clean_and_1_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", small_report())
        fresh_report = small_report()
        clean = self._write(tmp_path, "clean.json", fresh_report)
        assert main(["--baseline", str(base), "--fresh", str(clean)]) == 0
        assert "OK" in capsys.readouterr().out
        slow = copy.deepcopy(fresh_report)
        slow["results"][3]["items_per_sec"] = 50_000.0
        slowed = self._write(tmp_path, "slow.json", slow)
        assert main(["--baseline", str(base), "--fresh", str(slowed)]) == 1
        assert "REGRESSED" in capsys.readouterr().out


class TestSubprocessEndToEnd:
    def test_injected_50_percent_slowdown_flips_exit_status(self, tmp_path):
        """Drive the gate exactly as CI does: `python -m
        repro.benchkit.regress` against two report files, one with a 50%
        slowdown injected into a single cell."""
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(small_report()))
        slow_report = small_report()
        slow_report["results"][0]["items_per_sec"] *= 0.5
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(slow_report))

        def run(fresh_path):
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.benchkit.regress",
                    "--baseline",
                    str(base),
                    "--fresh",
                    str(fresh_path),
                ],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
            )

        ok = run(base)
        assert ok.returncode == 0, ok.stderr
        assert "OK" in ok.stdout
        bad = run(fresh)
        assert bad.returncode == 1, bad.stderr
        assert "REGRESSED" in bad.stdout


class TestShardSpeedupGate:
    def test_no_scaling_section_skips(self):
        ok, msg = check_shard_speedup(small_report())
        assert ok and "skipped" in msg and "no scaling section" in msg

    def test_starved_runner_skips_even_below_bar(self):
        fresh = small_report()
        fresh["scaling"] = scaling_section(cpu_count=1, speedup_at_4=0.2)
        ok, msg = check_shard_speedup(fresh)
        assert ok and "skipped" in msg and "1 core(s)" in msg

    def test_enforced_and_met_on_big_runner(self):
        fresh = small_report()
        fresh["scaling"] = scaling_section(cpu_count=8, speedup_at_4=3.1)
        ok, msg = check_shard_speedup(fresh)
        assert ok and "OK" in msg and "3.10x" in msg

    def test_enforced_and_failed_on_big_runner(self):
        fresh = small_report()
        fresh["scaling"] = scaling_section(cpu_count=8, speedup_at_4=1.4)
        ok, msg = check_shard_speedup(fresh)
        assert not ok and "FAIL" in msg
        assert f"{MIN_SHARD_SPEEDUP:.1f}x bar" in msg

    def test_best_engine_carries_the_bar(self):
        # One slow engine must not fail the gate while another scales.
        fresh = small_report()
        section = scaling_section(cpu_count=8, speedup_at_4=2.9)
        section["rows"] += [
            dict(row, engine="wbmh(POLYD-1)", speedup_vs_serial=0.8)
            for row in section["rows"]
        ]
        fresh["scaling"] = section
        ok, msg = check_shard_speedup(fresh)
        assert ok and "OK" in msg and "ewma" in msg

    def test_missing_4_shard_rows_skip(self):
        fresh = small_report()
        section = scaling_section(cpu_count=8, speedup_at_4=3.0)
        section["rows"] = [r for r in section["rows"] if r["shards"] == 1]
        fresh["scaling"] = section
        ok, msg = check_shard_speedup(fresh)
        assert ok and "skipped" in msg

    def test_malformed_section_rejected(self):
        fresh = small_report()
        fresh["scaling"] = {"cpu_count": 8, "rows": [{"engine": "x"}]}
        with pytest.raises(InvalidParameterError):
            check_shard_speedup(fresh)

    def test_main_fails_on_speedup_shortfall(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(small_report()))
        fresh_report = small_report()
        fresh_report["scaling"] = scaling_section(
            cpu_count=8, speedup_at_4=1.2
        )
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(fresh_report))
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 1
        out = capsys.readouterr().out
        assert "shard-speedup gate FAIL" in out

    def test_main_skips_on_starved_runner(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(small_report()))
        fresh_report = small_report()
        fresh_report["scaling"] = scaling_section(
            cpu_count=2, speedup_at_4=1.2
        )
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(fresh_report))
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 0
        assert "skipped" in capsys.readouterr().out


def forward_report(
    fwd_dense: float,
    fwd_bursty: float,
    *,
    exact: float = 2_000_000.0,
    ewma: float = 3_000_000.0,
) -> dict:
    """A report with forward + reference batched cells on both traces."""
    report = small_report()
    for engine, ips in (
        ("fwd(FWD-EXP-0.01)", {"dense": fwd_dense, "bursty": fwd_bursty}),
        ("exact(POLYD-1)", {"dense": exact, "bursty": exact}),
        ("ewma(EXPD-0.01)", {"dense": ewma, "bursty": ewma}),
    ):
        for trace, value in ips.items():
            report["results"].append(
                {
                    "engine": engine,
                    "trace": trace,
                    "mode": "batched",
                    "items": 1000,
                    "seconds": 0.01,
                    "items_per_sec": value,
                }
            )
    return report


class TestForwardIngestGate:
    def test_no_forward_cell_skips(self):
        passed, message = check_forward_fastest(small_report())
        assert passed
        assert "skipped" in message

    def test_no_reference_cells_skip(self):
        report = small_report()
        report["results"].append(
            {
                "engine": "fwd(FWD-EXP-0.01)",
                "trace": "dense",
                "mode": "batched",
                "items": 1000,
                "seconds": 0.01,
                "items_per_sec": 1_000_000.0,
            }
        )
        passed, message = check_forward_fastest(report)
        assert passed
        assert "skipped" in message

    def test_forward_matching_the_slower_reference_passes(self):
        # 2.1M beats the slower reference (exact at 2.0M) even though the
        # ewma register (3.0M) is faster: the gate bars only falling
        # behind *both* reference cells.
        passed, message = check_forward_fastest(
            forward_report(2_100_000.0, 2_100_000.0)
        )
        assert passed
        assert "OK" in message

    def test_forward_behind_both_references_fails(self):
        passed, message = check_forward_fastest(
            forward_report(1_000_000.0, 2_100_000.0)
        )
        assert not passed
        assert "dense" in message

    def test_worst_trace_carries_the_bar(self):
        passed, message = check_forward_fastest(
            forward_report(2_100_000.0, 900_000.0)
        )
        assert not passed
        assert "bursty" in message

    def test_noise_margin_is_honoured(self):
        # Just inside the noise bar: ratio MIN_FORWARD_RATIO exactly.
        floor = 2_000_000.0
        passed, _ = check_forward_fastest(
            forward_report(floor * MIN_FORWARD_RATIO, floor)
        )
        assert passed
        passed, _ = check_forward_fastest(
            forward_report(floor * MIN_FORWARD_RATIO * 0.99, floor)
        )
        assert not passed

    def test_min_ratio_validation(self):
        with pytest.raises(InvalidParameterError):
            check_forward_fastest(forward_report(1.0, 1.0), min_ratio=0.0)
        with pytest.raises(InvalidParameterError):
            check_forward_fastest(forward_report(1.0, 1.0), min_ratio=1.5)

    def test_main_fails_on_forward_shortfall(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(small_report()))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(forward_report(500_000.0, 500_000.0)))
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 1
        assert "forward-ingest gate FAIL" in capsys.readouterr().out

    def test_main_passes_with_healthy_forward_cells(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(small_report()))
        fresh = tmp_path / "fresh.json"
        fresh.write_text(
            json.dumps(forward_report(4_000_000.0, 4_000_000.0))
        )
        assert main(["--baseline", str(base), "--fresh", str(fresh)]) == 0
        assert "forward-ingest gate OK" in capsys.readouterr().out


class TestFormatDiff:
    def test_table_lists_every_cell(self):
        diffs = compare_reports(small_report(), small_report())
        out = format_diff(diffs, threshold=DEFAULT_THRESHOLD)
        assert out.count("ok") >= len(diffs)
        assert "30%" in out


def headroom_section(**engines: float) -> dict:
    """A minimal schema-v4 numpy_baseline section for gate tests."""
    return {
        "items": 20_000.0,
        "seconds": 0.02,
        "items_per_sec": 1_000_000.0,
        "headroom": dict(engines),
    }


class TestHistogramHeadroomGate:
    def test_no_headroom_section_skips(self):
        ok, msg = check_histogram_headroom(small_report())
        assert ok
        assert "skipped" in msg

    def test_no_histogram_engines_skips(self):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(**{"ewma(EXPD-0.01)": 9.0}),
        }
        ok, msg = check_histogram_headroom(report)
        assert ok
        assert "skipped" in msg

    def test_all_engines_within_bar_pass(self):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(
                **{
                    "eh(SLIWIN-512)": 1.4,
                    "ceh(POLYD-1)": 1.1,
                    "wbmh(POLYD-1)": 0.7,
                    # Register engines may sit anywhere; the bar ignores them.
                    "exact(POLYD-1)": 50.0,
                }
            ),
        }
        ok, msg = check_histogram_headroom(report)
        assert ok
        assert "OK" in msg

    def test_one_engine_above_bar_fails_and_is_named(self):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(
                **{
                    "eh(SLIWIN-512)": 1.4,
                    "ceh(POLYD-1)": MAX_HISTOGRAM_HEADROOM + 0.5,
                }
            ),
        }
        ok, msg = check_histogram_headroom(report)
        assert not ok
        assert "ceh(POLYD-1)" in msg
        assert "FAIL" in msg

    def test_exactly_on_the_bar_passes(self):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(
                **{"wbmh(POLYD-1)": MAX_HISTOGRAM_HEADROOM}
            ),
        }
        ok, _ = check_histogram_headroom(report)
        assert ok

    def test_malformed_headroom_rejected(self):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(**{"eh(SLIWIN-512)": 1.0}),
        }
        report["numpy_baseline"]["headroom"]["eh(SLIWIN-512)"] = "fast"
        with pytest.raises(InvalidParameterError):
            check_histogram_headroom(report)

    def test_bar_validation(self):
        with pytest.raises(InvalidParameterError):
            check_histogram_headroom(small_report(), max_headroom=0.0)

    def test_main_fails_on_headroom_breach(self, tmp_path, capsys):
        report = {
            **small_report(),
            "numpy_baseline": headroom_section(
                **{"eh(SLIWIN-512)": MAX_HISTOGRAM_HEADROOM * 3}
            ),
        }
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(json.dumps(small_report()))
        fresh.write_text(json.dumps(report))
        code = main(["--baseline", str(base), "--fresh", str(fresh)])
        out = capsys.readouterr().out
        assert code == 1
        assert "histogram-headroom gate FAIL" in out


class TestSchemaLagGate:
    def test_missing_versions_skip(self):
        report = {"results": small_report()["results"]}
        ok, msg = check_schema_lag(report, small_report())
        assert ok
        assert "skipped" in msg

    def test_equal_and_ahead_pass(self):
        base = small_report()
        ahead = {**small_report(), "schema_version": base["schema_version"] + 1}
        assert check_schema_lag(base, base)[0]
        assert check_schema_lag(base, ahead)[0]

    def test_lagging_fresh_fails_with_instructions(self):
        base = {**small_report(), "schema_version": 4}
        stale = {**small_report(), "schema_version": 3}
        ok, msg = check_schema_lag(base, stale)
        assert not ok
        assert "stale" in msg
        assert "regenerate" in msg

    def test_main_fails_on_stale_root_snapshot(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        fresh = tmp_path / "fresh.json"
        base.write_text(
            json.dumps({**small_report(), "schema_version": 99})
        )
        fresh.write_text(json.dumps(small_report()))
        code = main(["--baseline", str(base), "--fresh", str(fresh)])
        out = capsys.readouterr().out
        assert code == 1
        assert "schema-lag gate FAIL" in out


class TestWallClockExemption:
    def test_regress_module_is_rk001_exempt(self):
        """RK001 bans wall-clock reads in the library proper but exempts
        ``benchkit``; the regression gate lives there on purpose. Lint the
        real shipped sources to pin the allowlist."""
        for rel in ("benchkit/regress.py", "benchkit/throughput.py"):
            path = REPO_ROOT / "src" / "repro" / rel
            found = lint_source(
                path.read_text(), f"repro/{rel}", select=["RK001"]
            )
            assert found == [], rel
