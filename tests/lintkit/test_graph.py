"""Golden tests for the whole-program layer: symbol table, call graph,
taint fixpoint.

The ``fixtures/graphpkg`` package is small enough to state its full graph
by hand; these tests pin the resolution semantics the project rules
(RK009/RK010/RK012) build on -- relative imports, re-exports through
``__init__``, inherited-method dispatch through ``self`` -- so a graph
regression fails here with a named edge, not three rules deep.
"""

from __future__ import annotations

from pathlib import Path

from repro.lintkit.dataflow import TaintAnalysis
from repro.lintkit.engine import FileContext
from repro.lintkit.graph import ProjectContext, module_name_for

GRAPHPKG = Path(__file__).parent / "fixtures" / "graphpkg"


def load_graphpkg() -> ProjectContext:
    contexts = []
    for path in sorted(GRAPHPKG.glob("*.py")):
        contexts.append(
            FileContext.from_source(
                path.read_text(encoding="utf-8"), f"graphpkg/{path.name}"
            )
        )
    return ProjectContext(contexts)


class TestModuleNaming:
    def test_src_layout(self):
        assert module_name_for(("src", "repro", "core", "ewma.py")) == (
            "repro.core.ewma"
        )

    def test_package_init_collapses(self):
        assert module_name_for(("src", "repro", "lintkit", "__init__.py")) == (
            "repro.lintkit"
        )

    def test_repro_anchor_without_src(self):
        assert module_name_for(
            ("site-packages", "repro", "histograms", "eh.py")
        ) == "repro.histograms.eh"

    def test_standalone_tree_keeps_relative_path(self):
        assert module_name_for(("graphpkg", "util.py")) == "graphpkg.util"


class TestSymbolTable:
    def test_init_reexports_resolve_to_definitions(self):
        graph = load_graphpkg().graph
        init = graph.modules["graphpkg"]
        assert init.exports["Engine"] == "graphpkg.engine.Engine"
        assert init.exports["exported_helper"] == "graphpkg.util.helper"

    def test_resolution_follows_reexport_chain(self):
        graph = load_graphpkg().graph
        # engine.py binds ``exported_helper`` via ``from . import ...``;
        # the chain goes through the package __init__ to util.helper.
        assert graph.resolve("graphpkg.engine", "exported_helper") == (
            "graphpkg.util.helper"
        )

    def test_class_model(self):
        graph = load_graphpkg().graph
        engine = graph.class_named("graphpkg.engine.Engine")
        assert engine is not None
        assert set(engine.init_attr_lines) == {"size", "_scale", "_items"}
        # size/_scale are rebuilt by re-running the constructor; the
        # empty _items list is state the ctor cannot recover.
        assert engine.ctor_covered == frozenset({"size", "_scale"})
        assert engine.bases == ("Base",)

    def test_mro_reaches_project_base(self):
        graph = load_graphpkg().graph
        engine = graph.class_named("graphpkg.engine.Engine")
        assert [c.qualname for c in graph.mro(engine)] == [
            "graphpkg.engine.Engine",
            "graphpkg.engine.Base",
        ]


class TestCallGraph:
    def test_self_dispatch_and_inherited_methods(self):
        graph = load_graphpkg().graph
        run = graph.function_named("graphpkg.engine.Engine.run")
        targets = {site.target for site in run.calls if site.resolved}
        assert targets == {
            "graphpkg.engine.Engine.step",  # own method via self
            "graphpkg.engine.Base.shared",  # inherited, resolved to Base
        }

    def test_cross_module_edges_through_reexport(self):
        graph = load_graphpkg().graph
        step = graph.function_named("graphpkg.engine.Engine.step")
        targets = {site.target for site in step.calls if site.resolved}
        assert "graphpkg.util.helper" in targets   # via __init__ re-export
        assert "graphpkg.util.wrapper" in targets  # via relative import

    def test_external_call_kept_unresolved_with_canonical_name(self):
        graph = load_graphpkg().graph
        helper = graph.function_named("graphpkg.util.helper")
        external = [s.target for s in helper.calls if not s.resolved]
        assert external == ["os.getcwd"]

    def test_reverse_edges(self):
        graph = load_graphpkg().graph
        assert graph.callers["graphpkg.util.helper"] == {
            "graphpkg.engine.Engine.step",
            "graphpkg.util.wrapper",
        }


class TestTaintFixpoint:
    def test_chains_are_shortest_witnesses(self):
        graph = load_graphpkg().graph
        analysis = TaintAnalysis(
            graph, {"cwd": lambda target: target == "os.getcwd"}
        )
        table = analysis.tainted["cwd"]
        assert table["graphpkg.util.helper"].chain == (
            "graphpkg.util.helper",
            "os.getcwd",
        )
        assert table["graphpkg.util.wrapper"].chain == (
            "graphpkg.util.wrapper",
            "graphpkg.util.helper",
            "os.getcwd",
        )
        # step calls both helper (2 hops) and wrapper (3 hops): BFS must
        # pick the shorter witness.
        assert table["graphpkg.engine.Engine.step"].chain == (
            "graphpkg.engine.Engine.step",
            "graphpkg.util.helper",
            "os.getcwd",
        )
        assert table["graphpkg.engine.Engine.run"].chain[0] == (
            "graphpkg.engine.Engine.run"
        )
        assert table["graphpkg.engine.Engine.run"].sink == "os.getcwd"

    def test_untainted_functions_stay_clean(self):
        graph = load_graphpkg().graph
        analysis = TaintAnalysis(
            graph, {"cwd": lambda target: target == "os.getcwd"}
        )
        assert "graphpkg.engine.Base.shared" not in analysis.tainted["cwd"]
