"""Pragma suppression, registry, and engine plumbing tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.lintkit import all_rules, get_rule, lint_source
from repro.lintkit.pragmas import parse_pragmas

RK001_SNIPPET = "import time\nx = time.time()%s\n"


class TestLinePragmas:
    def test_matching_rule_suppressed(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[RK001]", "repro/core/x.py"
        )
        assert found == []

    def test_other_rule_not_suppressed(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[RK002]", "repro/core/x.py"
        )
        assert [v.rule_id for v in found] == ["RK001"]

    def test_bare_ignore_suppresses_all(self):
        found = lint_source(RK001_SNIPPET % "  # lintkit: ignore", "repro/core/x.py")
        assert found == []

    def test_multiple_ids_and_case(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[rk004, RK001]", "repro/core/x.py"
        )
        assert found == []

    def test_pragma_on_other_line_does_not_leak(self):
        source = "# lintkit: ignore[RK001]\nimport time\nx = time.time()\n"
        found = lint_source(source, "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK001"]


class TestFilePragmas:
    def test_ignore_file_with_rule(self):
        source = "# lintkit: ignore-file[RK001]\nimport time\nx = time.time()\n"
        assert lint_source(source, "repro/core/x.py") == []

    def test_ignore_file_bare_suppresses_everything(self):
        source = textwrap.dedent(
            """
            # lintkit: ignore-file
            import time

            def f(a, b):
                try:
                    return time.time()
                except:
                    pass
            """
        )
        assert lint_source(source, "repro/core/x.py") == []

    def test_parse_pragmas_shapes(self):
        sup = parse_pragmas(
            "x = 1  # lintkit: ignore[RK001]\n# lintkit: ignore-file[RK005]\n"
        )
        assert sup.by_line[1] == frozenset({"RK001"})
        assert sup.file_level == frozenset({"RK005"})
        assert sup.is_suppressed("RK005", 99)
        assert not sup.is_suppressed("RK002", 2)


class TestRegistryAndEngine:
    def test_full_catalog_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "RK001", "RK002", "RK003", "RK004", "RK005", "RK006", "RK007",
            "RK008", "RK009", "RK010", "RK011", "RK012",
        ]

    def test_project_rules_flagged_as_such(self):
        from repro.lintkit import ProjectRule

        kinds = {
            rule.rule_id: isinstance(rule, ProjectRule) for rule in all_rules()
        }
        assert kinds["RK009"] and kinds["RK010"] and kinds["RK012"]
        assert not kinds["RK001"] and not kinds["RK011"]

    def test_rules_carry_catalog_metadata(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_get_rule_and_unknown_select(self):
        assert get_rule("RK004").rule_id == "RK004"
        with pytest.raises(KeyError):
            lint_source("x = 1\n", "repro/core/x.py", select=["RK999"])

    def test_syntax_error_reported_as_rk000(self):
        found = lint_source("def f(:\n", "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK000"]
        assert "syntax error" in found[0].message

    def test_violations_sorted_by_location(self):
        source = textwrap.dedent(
            """
            import time

            b = time.time()
            try:
                a = 1
            except:
                pass
            """
        )
        found = lint_source(source, "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK001", "RK004"]
        assert found[0].line < found[1].line

    def test_render_contains_rule_id_and_location(self):
        found = lint_source("import time\nx = time.time()\n", "repro/core/x.py")
        text = found[0].render()
        assert "repro/core/x.py:2" in text
        assert "RK001" in text


#: RK006 anchors its "missing annotation" violation on the ``def`` line,
#: which for a decorated function is *below* the decorators -- exactly the
#: case decorator-line pragma binding exists for.  The ``(core|histograms)
#: public surface`` scope plus a public def makes it fire deterministically.
DECORATED_DEF = textwrap.dedent(
    """
    import functools

    {first_line}
    @functools.wraps(print){second_comment}
    def shipped(x):{def_comment}
        return x
    """
)


class TestDecoratorPragmas:
    def _lint(self, first_line="@functools.cache", second_comment="", def_comment=""):
        source = DECORATED_DEF.format(
            first_line=first_line,
            second_comment=second_comment,
            def_comment=def_comment,
        )
        return lint_source(source, "repro/core/x.py", select=["RK006"])

    def test_undecorated_baseline_fires(self):
        assert [v.rule_id for v in self._lint()] == ["RK006"]

    def test_pragma_on_first_decorator_line(self):
        found = self._lint(
            first_line="@functools.cache  # lintkit: ignore[RK006]"
        )
        assert found == []

    def test_pragma_on_any_decorator_line(self):
        found = self._lint(second_comment="  # lintkit: ignore[RK006]")
        assert found == []

    def test_pragma_on_def_line_still_works(self):
        found = self._lint(def_comment="  # lintkit: ignore[RK006]")
        assert found == []

    def test_wrong_rule_on_decorator_does_not_suppress(self):
        found = self._lint(
            first_line="@functools.cache  # lintkit: ignore[RK001]"
        )
        assert [v.rule_id for v in found] == ["RK006"]

    def test_bare_ignore_on_decorator_suppresses_all(self):
        found = self._lint(first_line="@functools.cache  # lintkit: ignore")
        assert found == []

    def test_decorated_class_pragma_binds_to_class_line(self):
        import ast

        from repro.lintkit.pragmas import bind_decorator_pragmas

        source = textwrap.dedent(
            """\
            import dataclasses

            @dataclasses.dataclass  # lintkit: ignore[RK003]
            class Timed:
                t: float = 0.0
            """
        )
        sup = parse_pragmas(source)
        assert not sup.is_suppressed("RK003", 4)  # class line, pre-binding
        bind_decorator_pragmas(sup, ast.parse(source))
        assert sup.is_suppressed("RK003", 4)
        assert not sup.is_suppressed("RK001", 4)

    def test_multiline_decorator_pragma_binds_from_any_physical_line(self):
        import ast

        from repro.lintkit.pragmas import bind_decorator_pragmas

        source = textwrap.dedent(
            """\
            import functools

            @functools.partial(
                print,  # lintkit: ignore[RK006]
            )
            def shipped(x):
                return x
            """
        )
        sup = parse_pragmas(source)
        bind_decorator_pragmas(sup, ast.parse(source))
        assert sup.is_suppressed("RK006", 6)  # the def line
