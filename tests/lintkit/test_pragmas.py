"""Pragma suppression, registry, and engine plumbing tests."""

from __future__ import annotations

import textwrap

import pytest

from repro.lintkit import all_rules, get_rule, lint_source
from repro.lintkit.pragmas import parse_pragmas

RK001_SNIPPET = "import time\nx = time.time()%s\n"


class TestLinePragmas:
    def test_matching_rule_suppressed(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[RK001]", "repro/core/x.py"
        )
        assert found == []

    def test_other_rule_not_suppressed(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[RK002]", "repro/core/x.py"
        )
        assert [v.rule_id for v in found] == ["RK001"]

    def test_bare_ignore_suppresses_all(self):
        found = lint_source(RK001_SNIPPET % "  # lintkit: ignore", "repro/core/x.py")
        assert found == []

    def test_multiple_ids_and_case(self):
        found = lint_source(
            RK001_SNIPPET % "  # lintkit: ignore[rk004, RK001]", "repro/core/x.py"
        )
        assert found == []

    def test_pragma_on_other_line_does_not_leak(self):
        source = "# lintkit: ignore[RK001]\nimport time\nx = time.time()\n"
        found = lint_source(source, "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK001"]


class TestFilePragmas:
    def test_ignore_file_with_rule(self):
        source = "# lintkit: ignore-file[RK001]\nimport time\nx = time.time()\n"
        assert lint_source(source, "repro/core/x.py") == []

    def test_ignore_file_bare_suppresses_everything(self):
        source = textwrap.dedent(
            """
            # lintkit: ignore-file
            import time

            def f(a, b):
                try:
                    return time.time()
                except:
                    pass
            """
        )
        assert lint_source(source, "repro/core/x.py") == []

    def test_parse_pragmas_shapes(self):
        sup = parse_pragmas(
            "x = 1  # lintkit: ignore[RK001]\n# lintkit: ignore-file[RK005]\n"
        )
        assert sup.by_line[1] == frozenset({"RK001"})
        assert sup.file_level == frozenset({"RK005"})
        assert sup.is_suppressed("RK005", 99)
        assert not sup.is_suppressed("RK002", 2)


class TestRegistryAndEngine:
    def test_full_catalog_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "RK001", "RK002", "RK003", "RK004", "RK005", "RK006", "RK007",
            "RK008",
        ]

    def test_rules_carry_catalog_metadata(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_get_rule_and_unknown_select(self):
        assert get_rule("RK004").rule_id == "RK004"
        with pytest.raises(KeyError):
            lint_source("x = 1\n", "repro/core/x.py", select=["RK999"])

    def test_syntax_error_reported_as_rk000(self):
        found = lint_source("def f(:\n", "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK000"]
        assert "syntax error" in found[0].message

    def test_violations_sorted_by_location(self):
        source = textwrap.dedent(
            """
            import time

            b = time.time()
            try:
                a = 1
            except:
                pass
            """
        )
        found = lint_source(source, "repro/core/x.py")
        assert [v.rule_id for v in found] == ["RK001", "RK004"]
        assert found[0].line < found[1].line

    def test_render_contains_rule_id_and_location(self):
        found = lint_source("import time\nx = time.time()\n", "repro/core/x.py")
        text = found[0].render()
        assert "repro/core/x.py:2" in text
        assert "RK001" in text
