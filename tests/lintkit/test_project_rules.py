"""Tests for the whole-program rules RK009-RK012.

Two layers: synthetic micro-projects (assembled in memory via
``FileContext.from_source``) pin each rule's contract, and *mutant*
tests run the rules over the real shipped tree with one invariant
deliberately broken -- deleting a ``_gen`` bump from ``eh.py``, dropping
a field from ``serialize.py`` -- proving the rules catch exactly the
regressions they were built for.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lintkit.engine import FileContext, lint_contexts

REPO_SRC = Path(__file__).parents[2] / "src"


def lint_project(files: dict[str, str], select: list[str]):
    contexts = [
        FileContext.from_source(textwrap.dedent(source), path)
        for path, source in files.items()
    ]
    return lint_contexts(contexts, select=select)


def load_tree(mutate: dict[str, tuple[str, str]] | None = None):
    """Contexts for the real ``src/repro`` tree, optionally mutated.

    ``mutate`` maps a path suffix to an ``(old, new)`` source rewrite;
    the old text must occur exactly once past any ``anchor:`` prefix.
    """
    mutate = dict(mutate or {})
    contexts = []
    for path in sorted((REPO_SRC / "repro").rglob("*.py")):
        rel = str(path.relative_to(REPO_SRC.parent))
        source = path.read_text(encoding="utf-8")
        for suffix, (old, new) in list(mutate.items()):
            if rel.endswith(suffix):
                assert old in source, f"mutation anchor missing in {rel}"
                source = source.replace(old, new, 1)
                del mutate[suffix]
        contexts.append(FileContext.from_source(source, rel))
    assert not mutate, f"unused mutations: {list(mutate)}"
    return contexts


# --------------------------------------------------------------- RK009


ENGINE_TEMPLATE = """
class Engine:
    def __init__(self, size):
        self._size = size
        self._state = []
        self._gen = 0
        self._cache = None

    def query(self):
        if self._cache is not None and self._cache[0] == self._gen:
            return self._cache[1]
        answer = len(self._state)
        self._cache = (self._gen, answer)
        return answer

{methods}
"""


class TestRK009Synthetic:
    def _lint(self, methods: str):
        source = ENGINE_TEMPLATE.format(methods=textwrap.indent(methods, "    "))
        return lint_project({"src/repro/core/e.py": source}, ["RK009"])

    def test_public_mutation_without_bump_fires(self):
        found = self._lint(
            "def push(self, x):\n"
            "    self._state.append(x)\n"
        )
        assert [v.rule_id for v in found] == ["RK009"]
        assert "push" in found[0].message
        assert "_state" in found[0].message

    def test_bump_in_same_method_is_clean(self):
        found = self._lint(
            "def push(self, x):\n"
            "    self._gen += 1\n"
            "    self._state.append(x)\n"
        )
        assert found == []

    def test_bump_anywhere_in_call_closure_counts(self):
        found = self._lint(
            "def push(self, x):\n"
            "    self._push_impl(x)\n"
            "def _push_impl(self, x):\n"
            "    self._gen += 1\n"
            "    self._state.append(x)\n"
        )
        assert found == []

    def test_private_helper_judged_via_public_caller(self):
        # _compact mutates without bumping, but its only public caller
        # bumps -- exactly the EH _cascade pattern; must stay clean.
        found = self._lint(
            "def push(self, x):\n"
            "    self._gen += 1\n"
            "    self._state.append(x)\n"
            "    self._compact()\n"
            "def _compact(self):\n"
            "    self._state.sort()\n"
        )
        assert found == []

    def test_memo_write_is_not_a_mutation(self):
        # query() assigns self._cache in the shared template; it must not
        # itself demand a bump.
        found = self._lint("")
        assert found == []

    def test_alias_mutation_detected(self):
        found = self._lint(
            "def push(self, x):\n"
            "    state = self._state\n"
            "    state.append(x)\n"
        )
        assert [v.rule_id for v in found] == ["RK009"]

    def test_classes_without_gen_are_out_of_scope(self):
        found = lint_project(
            {
                "src/repro/core/plain.py": """
                class Plain:
                    def __init__(self):
                        self._state = []

                    def push(self, x):
                        self._state.append(x)
                """
            },
            ["RK009"],
        )
        assert found == []


class TestRK009Mutants:
    def test_shipped_tree_is_clean(self):
        assert lint_contexts(load_tree(), select=["RK009"]) == []

    def test_deleting_merge_bump_fires(self):
        # eh.py's merge() bumps _gen exactly once; delete it and RK009
        # must flag merge (its closure mutates buckets with no bump).
        contexts = load_tree(
            {
                "histograms/eh.py": (
                    "        self._gen += 1\n        if len(self._cols):",
                    "        if len(self._cols):",
                )
            }
        )
        found = lint_contexts(contexts, select=["RK009"])
        assert len(found) == 1
        assert found[0].rule_id == "RK009"
        assert "merge" in found[0].message
        assert found[0].path.endswith("histograms/eh.py")

    def test_deleting_advance_bump_fires(self):
        contexts = load_tree(
            {
                "histograms/domination.py": (
                    "        if steps:\n            self._gen += 1\n",
                    "",
                )
            }
        )
        found = lint_contexts(contexts, select=["RK009"])
        assert any(
            v.rule_id == "RK009" and "advance" in v.message for v in found
        ), [v.render() for v in found]


# --------------------------------------------------------------- RK010


class TestRK010:
    FILES = {
        "src/repro/benchkit/timers.py": """
        import time

        def stamp():
            return time.time()
        """,
        "src/repro/core/trace.py": """
        from repro.benchkit.timers import stamp

        def ingest():
            return stamp()
        """,
    }

    def test_exempt_helper_crossing_fires_with_chain(self):
        found = lint_project(self.FILES, ["RK010"])
        assert [v.rule_id for v in found] == ["RK010"]
        v = found[0]
        assert v.path == "src/repro/core/trace.py"
        assert v.evidence == (
            "repro.core.trace.ingest",
            "repro.benchkit.timers.stamp",
            "time.time",
        )
        assert "time.time" in v.message
        assert "[repro.core.trace.ingest -> " in v.render()

    def test_direct_calls_left_to_per_file_rules(self):
        found = lint_project(
            {
                "src/repro/core/trace.py": """
                import time

                def ingest():
                    return time.time()
                """
            },
            ["RK010"],
        )
        assert found == []  # RK001 territory, not RK010

    def test_exempt_caller_is_not_flagged(self):
        files = dict(self.FILES)
        files["src/repro/benchkit/driver.py"] = """
        from repro.benchkit.timers import stamp

        def measure():
            return stamp()
        """
        found = lint_project(files, ["RK010"])
        assert {v.path for v in found} == {"src/repro/core/trace.py"}

    def test_concurrency_label_binds_engines_not_drivers(self):
        files = {
            "src/repro/parallel/executor.py": """
            import multiprocessing

            def fan_out():
                return multiprocessing.Pool()
            """,
            "src/repro/histograms/bad.py": """
            from repro.parallel.executor import fan_out

            def merge_all():
                return fan_out()
            """,
            "src/repro/benchkit/driver.py": """
            from repro.parallel.executor import fan_out

            def bench():
                return fan_out()
            """,
        }
        found = lint_project(files, ["RK010"])
        assert [v.path for v in found] == ["src/repro/histograms/bad.py"]

    def test_pragma_suppresses_at_crossing_line(self):
        files = dict(self.FILES)
        files["src/repro/core/trace.py"] = """
        from repro.benchkit.timers import stamp

        def ingest():
            return stamp()  # lintkit: ignore[RK010]
        """
        assert lint_project(files, ["RK010"]) == []

    def test_shipped_tree_is_clean(self):
        assert lint_contexts(load_tree(), select=["RK010"]) == []


# --------------------------------------------------------------- RK011


class TestRK011:
    def test_shipped_tree_is_clean(self):
        assert lint_contexts(load_tree(), select=["RK011"]) == []

    def test_shipped_kernels_are_marked_hot(self):
        from repro.lintkit.pragmas import marker_lines

        eh = (REPO_SRC / "repro" / "histograms" / "eh.py").read_text()
        batching = (REPO_SRC / "repro" / "core" / "batching.py").read_text()
        soa = (REPO_SRC / "repro" / "histograms" / "soa.py").read_text()
        assert marker_lines(eh, "hot")
        assert marker_lines(batching, "hot")
        # The SoA kernel module must keep its per-item append path and
        # both bulk-kernel inner loops under RK011's allocation scoping.
        assert len(marker_lines(soa, "hot")) >= 3

    def test_unmarked_function_unconstrained(self):
        found = lint_project(
            {
                "src/repro/core/k.py": """
                def cold(xs):
                    return [x * 2 for x in xs]
                """
            },
            ["RK011"],
        )
        assert found == []

    def test_marker_on_decorator_line(self):
        found = lint_project(
            {
                "src/repro/core/k.py": """
                import functools

                @functools.cache  # lintkit: hot
                def kernel(xs):
                    out = 0
                    for x in xs:
                        out += sum(y for y in x)
                    return out
                """
            },
            ["RK011"],
        )
        assert [v.rule_id for v in found] == ["RK011"]
        assert "generator expression" in found[0].message

    def test_literal_displays_allowed(self):
        found = lint_project(
            {
                "src/repro/core/k.py": """
                def kernel(items):  # lintkit: hot
                    pairs = []
                    for item in items:
                        pairs.append([item, item * 2])
                    return pairs
                """
            },
            ["RK011"],
        )
        assert found == []

    def test_container_ctor_and_closure_flagged(self):
        found = lint_project(
            {
                "src/repro/core/k.py": """
                def kernel(items):  # lintkit: hot
                    out = []
                    for item in items:
                        seen = set()
                        key = lambda v: v
                        out.append(seen)
                    return out
                """
            },
            ["RK011"],
        )
        assert sorted(v.line for v in found) == [5, 6]
        messages = " ".join(v.message for v in found)
        assert "set() construction" in messages
        assert "closure allocation" in messages

    def test_allocation_outside_loop_allowed(self):
        found = lint_project(
            {
                "src/repro/core/k.py": """
                def kernel(items):  # lintkit: hot
                    out = list(items)
                    squares = [x * x for x in items]
                    for i, item in enumerate(items):
                        out[i] = squares[i]
                    return out
                """
            },
            ["RK011"],
        )
        assert found == []


# --------------------------------------------------------------- RK012


class TestRK012Mutants:
    def test_shipped_tree_is_clean(self):
        assert lint_contexts(load_tree(), select=["RK012"]) == []

    def test_dropping_serialized_field_fires(self):
        # The ISSUE mutant: remove one field from the ewma writer branch.
        contexts = load_tree(
            {"repro/serialize.py": ('            "items": engine._items,\n', "")}
        )
        found = lint_contexts(contexts, select=["RK012"])
        assert found, "RK012 must flag the dropped 'items' field"
        assert all(v.rule_id == "RK012" for v in found)
        assert any(
            "'items'" in v.message and "never writes" in v.message
            for v in found
        ), [v.render() for v in found]

    def test_dropping_restore_assignment_fires(self):
        contexts = load_tree(
            {
                "repro/serialize.py": (
                    '        engine._since_compact = int(data["since_compact"])\n',
                    "",
                )
            }
        )
        found = lint_contexts(contexts, select=["RK012"])
        assert any(
            v.rule_id == "RK012" and "'since_compact'" in v.message
            for v in found
        ), [v.render() for v in found]


class TestRK012Synthetic:
    CODEC = """
    from repro.core.widget import Widget

    def engine_to_dict(engine):
        if isinstance(engine, Widget):
            return {{
                "version": 1,
                "engine": "widget",
                {to_fields}
            }}
        raise TypeError(engine)

    def engine_from_dict(data):
        kind = data.get("engine")
        if kind == "widget":
            engine = Widget({ctor_args})
            {from_fields}
            return engine
        raise KeyError(kind)
    """

    WIDGET = """
    class Widget:
        def __init__(self, size):
            self.size = size
            self._count = 0{marker}

        @property
        def count(self):
            return self._count
    """

    def _lint(self, to_fields, ctor_args, from_fields, marker=""):
        files = {
            "src/repro/core/widget.py": self.WIDGET.format(marker=marker),
            "src/repro/serialize.py": self.CODEC.format(
                to_fields=to_fields,
                ctor_args=ctor_args,
                from_fields=from_fields,
            ),
        }
        return lint_project(files, ["RK012"])

    def test_complete_codec_is_clean(self):
        found = self._lint(
            '"size": engine.size,\n                "count": engine.count,',
            'data["size"]',
            'engine._count = data["count"]',
        )
        assert found == []

    def test_uncovered_attribute_fires(self):
        found = self._lint('"size": engine.size,', 'data["size"]', "pass")
        assert [v.rule_id for v in found] == ["RK012"]
        assert "Widget._count" in found[0].message

    def test_not_serialized_marker_waives_attribute(self):
        found = self._lint(
            '"size": engine.size,',
            'data["size"]',
            "pass",
            marker="  # lintkit: not-serialized",
        )
        assert found == []

    def test_property_access_covers_backing_attr(self):
        # Writing engine.count (a property over _count) covers _count on
        # the serialize side even if restore rebuilds it another way.
        found = self._lint(
            '"size": engine.size,\n                "count": engine.count,',
            'data["size"]',
            'engine._count = data["count"]',
        )
        assert found == []

    def test_unrestored_key_fires(self):
        found = self._lint(
            '"size": engine.size,\n                "count": engine.count,',
            'data["size"]',
            "engine._count = 0",
        )
        assert any("'count'" in v.message and "never restored" in v.message
                   for v in found), [v.render() for v in found]


@pytest.mark.parametrize("rule", ["RK009", "RK010", "RK012"])
def test_project_rules_tolerate_single_file_projects(rule):
    # lint_source-style one-file pools must not crash the project rules.
    found = lint_project({"src/repro/core/tiny.py": "x = 1\n"}, [rule])
    assert found == []
