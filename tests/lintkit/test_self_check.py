"""Self-check: the shipped tree must be violation-free, in-process.

This is the programmatic twin of ``python -m repro.lintkit src/repro`` --
it keeps the invariants enforced by plain ``pytest`` runs even where the
CLI is never invoked.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lintkit import iter_python_files, lint_paths

SRC = Path(repro.__file__).parent


def test_package_root_resolves() -> None:
    assert (SRC / "core" / "interfaces.py").is_file()


def test_tree_has_expected_size() -> None:
    files = list(iter_python_files([SRC]))
    assert len(files) > 50  # the whole library, not a subset


def test_shipped_tree_is_violation_free() -> None:
    violations = lint_paths([SRC])
    details = "\n".join(v.render() for v in violations)
    assert violations == [], f"lintkit violations in shipped tree:\n{details}"


def test_shipped_tree_passes_whole_program_rules() -> None:
    """RK009-RK012 explicitly: the graph-based rules run (not vacuously
    skipped) and find the shipped engines sound."""
    violations = lint_paths([SRC], select=["RK009", "RK010", "RK011", "RK012"])
    details = "\n".join(v.render() for v in violations)
    assert violations == [], f"whole-program violations:\n{details}"


def test_whole_program_rules_see_the_real_graph() -> None:
    """Guard against the self-check passing because the graph is empty."""
    from repro.lintkit.engine import load_contexts
    from repro.lintkit.graph import ProjectContext

    contexts, errors = load_contexts([SRC])
    assert errors == []
    graph = ProjectContext(contexts).graph
    assert len(graph.modules) > 50
    assert len(graph.functions) > 400
    # A known intra-class edge: the EH cascade is reached from the add
    # fast path (protocol calls through engine variables stay dynamic by
    # design, so public entry points may legitimately have no callers).
    cascade = "repro.histograms.eh.ExponentialHistogram._cascade"
    add = "repro.histograms.eh.ExponentialHistogram.add"
    assert cascade in graph.functions
    assert add in graph.callers.get(cascade, set())
