"""Self-check: the shipped tree must be violation-free, in-process.

This is the programmatic twin of ``python -m repro.lintkit src/repro`` --
it keeps the invariants enforced by plain ``pytest`` runs even where the
CLI is never invoked.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lintkit import iter_python_files, lint_paths

SRC = Path(repro.__file__).parent


def test_package_root_resolves() -> None:
    assert (SRC / "core" / "interfaces.py").is_file()


def test_tree_has_expected_size() -> None:
    files = list(iter_python_files([SRC]))
    assert len(files) > 50  # the whole library, not a subset


def test_shipped_tree_is_violation_free() -> None:
    violations = lint_paths([SRC])
    details = "\n".join(v.render() for v in violations)
    assert violations == [], f"lintkit violations in shipped tree:\n{details}"
