"""Fixture: RK002 global/unseeded RNG (deliberately bad -- do not import)."""

import random


def draw() -> float:
    return random.random()  # RK002: module-global RNG


def make_rng() -> random.Random:
    return random.Random()  # RK002: unseeded
