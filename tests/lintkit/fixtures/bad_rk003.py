"""Fixture: RK003 incomplete engine (deliberately bad -- do not import)."""


class HalfBakedSum:
    """Marked as an engine by name, but missing most of the protocol."""

    def add(self, value: float = 1.0) -> None:
        pass

    def query(self) -> float:
        return 0.0
