"""Fixture: RK001 wall-clock reads (deliberately bad -- do not import)."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # RK001: wall clock


def when() -> object:
    return datetime.now()  # RK001: wall clock
