"""Fixture: RK005 float equality on ages (deliberately bad -- do not import)."""


def expired(age: float) -> bool:
    return age == 1.0  # RK005: exact float equality on an age


def boosted(weight: float) -> bool:
    return weight != 0.5  # RK005: exact float inequality on a weight
