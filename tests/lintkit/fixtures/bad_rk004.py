"""Fixture: RK004 bare/silent excepts (deliberately bad -- do not import)."""


def swallow(x: str) -> int:
    try:
        return int(x)
    except:  # noqa: E722  RK004: bare except
        return 0


def quiet(x: str) -> None:
    try:
        int(x)
    except ValueError:
        pass  # RK004: silent handler
