"""Fixture package for the project-graph golden tests.

Deliberately exercises the three resolution features the graph layer
claims: absolute intra-package imports, re-exports through ``__init__``
(``exported_helper`` is ``util.helper`` under another name), and
relative imports.  Lint-clean on purpose so the CLI fixture runs are
unaffected.
"""

from graphpkg.engine import Engine
from .util import helper as exported_helper

__all__ = ["Engine", "exported_helper"]
