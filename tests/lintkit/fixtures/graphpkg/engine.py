"""Class fixture: inheritance, self-dispatch, re-export consumption."""

from . import exported_helper
from .util import wrapper


class Base:
    def shared(self) -> int:
        return 1


class Engine(Base):
    def __init__(self, size: int) -> None:
        self.size = size
        self._scale = size * 2
        self._items: list[str] = []

    def run(self) -> int:
        self.step()
        return self.shared()

    def step(self) -> str:
        self._items.append(exported_helper())
        return wrapper()
