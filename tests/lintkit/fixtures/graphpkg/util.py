"""Leaf helpers: one external sink, one internal wrapper over it."""

import os


def helper() -> str:
    return os.getcwd()


def wrapper() -> str:
    return helper()
