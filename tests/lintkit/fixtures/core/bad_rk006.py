"""Fixture: RK006 missing annotations (deliberately bad -- do not import)."""


def combine(a, b):  # RK006: no parameter or return annotations
    return a + b


class Estimator:
    def update(self, value) -> None:  # RK006: `value` unannotated
        self.value = value
