"""Fixture: a fully conforming engine -- must produce zero violations."""

from __future__ import annotations


class TinyDecayingSum:
    """Minimal but complete DecayingSum implementation."""

    def __init__(self) -> None:
        self._time = 0
        self._total = 0.0

    @property
    def time(self) -> int:
        return self._time

    @property
    def decay(self) -> object:
        return None

    def add(self, value: float = 1.0) -> None:
        self._total += value

    def add_batch(self, values: list) -> None:
        for value in values:
            self.add(value)

    def advance(self, steps: int = 1) -> None:
        self._time += steps

    def advance_to(self, when: int) -> None:
        self._time = when

    def ingest(self, items: list, *, until: int | None = None) -> None:
        for item in items:
            self.advance_to(item.time)
            self.add(item.value)

    def query(self) -> float:
        return self._total

    def merge(self, other: "TinyDecayingSum") -> None:
        self._total += other._total

    def storage_report(self) -> object:
        return None
