"""Fixture: a fully conforming engine -- must produce zero violations."""

from __future__ import annotations


class TinyDecayingSum:
    """Minimal but complete DecayingSum implementation."""

    def __init__(self) -> None:
        self._time = 0
        self._total = 0.0

    @property
    def time(self) -> int:
        return self._time

    @property
    def decay(self) -> object:
        return None

    def add(self, value: float = 1.0) -> None:
        self._total += value

    def advance(self, steps: int = 1) -> None:
        self._time += steps

    def query(self) -> float:
        return self._total

    def storage_report(self) -> object:
        return None
