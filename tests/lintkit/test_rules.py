"""Positive/negative snippet tests for every lintkit rule (RK001-RK006)."""

from __future__ import annotations

import textwrap

from repro.lintkit import lint_source


def _lint(source: str, path: str, *rules: str):
    return lint_source(textwrap.dedent(source), path, select=rules or None)


def _ids(violations) -> list[str]:
    return [v.rule_id for v in violations]


# --------------------------------------------------------------------- RK001


class TestWallClock:
    def test_time_time_flagged(self):
        found = _lint(
            """
            import time

            def f() -> float:
                return time.time()
            """,
            "repro/core/x.py",
        )
        assert _ids(found) == ["RK001"]
        assert found[0].line == 5
        assert "time.time" in found[0].message

    def test_from_import_and_datetime_flagged(self):
        found = _lint(
            """
            from time import monotonic
            from datetime import datetime

            def f() -> float:
                return monotonic() + datetime.now().timestamp()
            """,
            "repro/streams/x.py",
        )
        assert _ids(found) == ["RK001", "RK001"]

    def test_benchkit_exempt(self):
        found = _lint(
            """
            import time

            def f() -> float:
                return time.perf_counter()
            """,
            "repro/benchkit/harness.py",
        )
        assert found == []

    def test_model_clock_ok(self):
        found = _lint(
            """
            def f(engine) -> None:
                engine.advance(3)
            """,
            "repro/core/x.py",
            "RK001",
        )
        assert found == []


# --------------------------------------------------------------------- RK002


class TestInjectedRng:
    def test_module_global_random_flagged(self):
        found = _lint(
            """
            import random

            def f() -> float:
                return random.random()
            """,
            "repro/sampling/x.py",
        )
        assert "RK002" in _ids(found)

    def test_numpy_global_flagged(self):
        found = _lint(
            """
            import numpy as np

            def f():
                return np.random.rand(3)
            """,
            "repro/sketches/x.py",
            "RK002",
        )
        assert _ids(found) == ["RK002"]
        assert "numpy.random.rand" in found[0].message

    def test_unseeded_constructors_flagged(self):
        found = _lint(
            """
            import random
            import numpy as np

            a = random.Random()
            b = random.Random(None)
            c = np.random.default_rng()
            """,
            "repro/streams/x.py",
            "RK002",
        )
        assert _ids(found) == ["RK002", "RK002", "RK002"]

    def test_conditional_none_seed_flagged(self):
        found = _lint(
            """
            import random

            def f(seed: int | None) -> random.Random:
                return random.Random(None if seed is None else seed + 1)
            """,
            "repro/sampling/x.py",
            "RK002",
        )
        assert _ids(found) == ["RK002"]

    def test_from_import_of_global_rng_flagged(self):
        found = _lint(
            "from random import randint\n",
            "repro/sampling/x.py",
            "RK002",
        )
        assert _ids(found) == ["RK002"]

    def test_seeded_and_defaulted_ok(self):
        found = _lint(
            """
            import random
            import numpy as np

            DEFAULT_SEED = 0x5EED

            def f(seed: int | None) -> None:
                a = random.Random(42)
                b = random.Random(DEFAULT_SEED if seed is None else seed)
                c = np.random.default_rng(7)
                d = a.random() + b.random() + c.random()
            """,
            "repro/sampling/x.py",
            "RK002",
        )
        assert found == []

    def test_out_of_scope_path_ignored(self):
        found = _lint(
            "import random\nx = random.random()\n",
            "repro/benchkit/x.py",
            "RK002",
        )
        assert found == []


# --------------------------------------------------------------------- RK003


class TestEngineProtocol:
    def test_incomplete_engine_by_name_flagged(self):
        found = _lint(
            """
            class BrokenSum:
                def add(self, value: float = 1.0) -> None: ...
                def query(self) -> float: ...
            """,
            "repro/core/x.py",
            "RK003",
        )
        assert _ids(found) == ["RK003"]
        for member in ("time", "decay", "advance", "storage_report"):
            assert member in found[0].message

    def test_incomplete_engine_by_base_flagged(self):
        found = _lint(
            """
            from repro.core.interfaces import DecayingSum

            class Widget(DecayingSum):
                def add(self, value: float = 1.0) -> None: ...
            """,
            "repro/apps/x.py",
            "RK003",
        )
        assert _ids(found) == ["RK003"]

    def test_complete_engine_ok(self):
        found = _lint(
            """
            class GoodSum:
                @property
                def time(self) -> int: ...
                @property
                def decay(self): ...
                def add(self, value: float = 1.0) -> None: ...
                def add_batch(self, values) -> None: ...
                def advance(self, steps: int = 1) -> None: ...
                def advance_to(self, when: int) -> None: ...
                def ingest(self, items, *, until=None) -> None: ...
                def query(self): ...
                def merge(self, other) -> None: ...
                def storage_report(self): ...
            """,
            "repro/core/x.py",
            "RK003",
        )
        assert found == []

    def test_engine_without_merge_flagged(self):
        # The mergeable-summaries surface is part of the protocol: an
        # engine missing only `merge` cannot ride the shard pool.
        found = _lint(
            """
            class AlmostSum:
                @property
                def time(self) -> int: ...
                @property
                def decay(self): ...
                def add(self, value: float = 1.0) -> None: ...
                def add_batch(self, values) -> None: ...
                def advance(self, steps: int = 1) -> None: ...
                def advance_to(self, when: int) -> None: ...
                def ingest(self, items, *, until=None) -> None: ...
                def query(self): ...
                def storage_report(self): ...
            """,
            "repro/core/x.py",
            "RK003",
        )
        assert _ids(found) == ["RK003"]
        assert "merge" in found[0].message

    def test_members_inherited_from_local_base_ok(self):
        found = _lint(
            """
            class BaseSum:
                @property
                def time(self) -> int: ...
                @property
                def decay(self): ...
                def add(self, value: float = 1.0) -> None: ...
                def add_batch(self, values) -> None: ...
                def advance(self, steps: int = 1) -> None: ...
                def advance_to(self, when: int) -> None: ...
                def ingest(self, items, *, until=None) -> None: ...
                def query(self): ...
                def merge(self, other) -> None: ...
                def storage_report(self): ...

            class QuantizedSum(BaseSum):
                def add(self, value: float = 1.0) -> None: ...
            """,
            "repro/core/x.py",
            "RK003",
        )
        assert found == []

    def test_protocol_and_private_classes_skipped(self):
        found = _lint(
            """
            from typing import Protocol

            class DecayingSum(Protocol):
                def add(self, value: float = 1.0) -> None: ...

            class _ScratchSum:
                pass
            """,
            "repro/core/x.py",
            "RK003",
        )
        assert found == []

    def test_unrelated_class_ignored(self):
        found = _lint(
            "class Histogram:\n    pass\n",
            "repro/core/x.py",
            "RK003",
        )
        assert found == []


# --------------------------------------------------------------------- RK004


class TestSilentExcept:
    def test_bare_except_flagged(self):
        found = _lint(
            """
            try:
                x = 1
            except:
                x = 0
            """,
            "repro/core/x.py",
            "RK004",
        )
        assert _ids(found) == ["RK004"]
        assert "bare" in found[0].message

    def test_blanket_exception_flagged(self):
        found = _lint(
            """
            try:
                x = 1
            except Exception:
                raise
            """,
            "repro/apps/x.py",
            "RK004",
        )
        assert _ids(found) == ["RK004"]

    def test_blanket_inside_tuple_flagged(self):
        found = _lint(
            """
            try:
                x = 1
            except (ValueError, BaseException):
                x = 0
            """,
            "repro/apps/x.py",
            "RK004",
        )
        assert _ids(found) == ["RK004"]

    def test_silent_narrow_handler_flagged(self):
        found = _lint(
            """
            try:
                x = 1
            except ValueError:
                pass
            """,
            "repro/core/x.py",
            "RK004",
        )
        assert _ids(found) == ["RK004"]
        assert "silent" in found[0].message

    def test_narrow_acting_handler_ok(self):
        found = _lint(
            """
            try:
                x = 1
            except (ValueError, KeyError) as exc:
                x = 0
            """,
            "repro/core/x.py",
            "RK004",
        )
        assert found == []


# --------------------------------------------------------------------- RK005


class TestFloatEquality:
    def test_age_eq_float_flagged(self):
        found = _lint(
            "def f(age: float) -> bool:\n    return age == 1.0\n",
            "repro/histograms/x.py",
            "RK005",
        )
        assert _ids(found) == ["RK005"]

    def test_attribute_weight_ne_float_flagged(self):
        found = _lint(
            "def f(b) -> bool:\n    return 0.5 != b.weight\n",
            "repro/histograms/x.py",
            "RK005",
        )
        assert _ids(found) == ["RK005"]

    def test_weight_call_eq_float_flagged(self):
        found = _lint(
            "def f(g, a: int) -> bool:\n    return g.weight(a) == 0.0\n",
            "repro/core/x.py",
            "RK005",
        )
        assert _ids(found) == ["RK005"]

    def test_int_literal_and_ordered_ok(self):
        found = _lint(
            """
            def f(age: int, weight: float, count: float) -> bool:
                return age == 1 or weight <= 0.5 or count == 0.0
            """,
            "repro/core/x.py",
            "RK005",
        )
        assert found == []

    def test_time_vs_time_without_literal_ok(self):
        found = _lint(
            "def f(a, t: int) -> bool:\n    return a.time == t\n",
            "repro/core/x.py",
            "RK005",
        )
        assert found == []


# --------------------------------------------------------------------- RK006


class TestPublicAnnotations:
    def test_unannotated_function_flagged(self):
        found = _lint(
            "def combine(a, b):\n    return a + b\n",
            "repro/core/x.py",
            "RK006",
        )
        assert _ids(found) == ["RK006"]
        assert "parameter `a`" in found[0].message
        assert "return type" in found[0].message

    def test_unannotated_method_param_flagged(self):
        found = _lint(
            """
            class Estimator:
                def update(self, value) -> None:
                    self.value = value
            """,
            "repro/histograms/x.py",
            "RK006",
        )
        assert _ids(found) == ["RK006"]
        assert "parameter `value`" in found[0].message

    def test_fully_annotated_ok(self):
        found = _lint(
            """
            class Estimator:
                def update(self, value: float, *extra: float, **kw: float) -> None:
                    self.value = value

            def combine(a: float, b: float) -> float:
                return a + b
            """,
            "repro/core/x.py",
            "RK006",
        )
        assert found == []

    def test_private_and_nested_skipped(self):
        found = _lint(
            """
            def _helper(a):
                return a

            class _Scratch:
                def update(self, value):
                    pass

            def outer() -> None:
                def inner(x):
                    return x
            """,
            "repro/core/x.py",
            "RK006",
        )
        assert found == []

    def test_out_of_scope_path_ignored(self):
        found = _lint(
            "def combine(a, b):\n    return a + b\n",
            "repro/apps/x.py",
            "RK006",
        )
        assert found == []


# --------------------------------------------------------------------- RK007


class TestPureLaws:
    PATH = "repro/conformance/laws.py"

    def test_wall_clock_in_law_flagged(self):
        found = _lint(
            """
            import time

            def check(spec, trace):
                return time.time()
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]
        assert "wall-clock" in found[0].message

    def test_global_rng_flagged(self):
        found = _lint(
            """
            import random

            def check(spec, trace):
                return random.random() < 0.5
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]
        assert "module-global RNG" in found[0].message

    def test_unseeded_random_instance_flagged(self):
        found = _lint(
            """
            import random

            def check(spec, trace):
                rng = random.Random()
                return rng.random()
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]
        assert "seed" in found[0].message

    def test_seeded_random_instance_ok(self):
        found = _lint(
            """
            import random

            def check(spec, trace):
                rng = random.Random(1234)
                return rng.random()
            """,
            self.PATH,
            "RK007",
        )
        assert found == []

    def test_trace_attribute_assignment_flagged(self):
        found = _lint(
            """
            def check(spec, trace):
                trace.tail = 0
                return []
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]
        assert "assigns into its trace argument" in found[0].message

    def test_trace_subscript_and_augassign_flagged(self):
        found = _lint(
            """
            def check(spec, trace):
                trace.items[0] = (0, 1.0)
                trace.tail += 1
                return []
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007", "RK007"]

    def test_trace_mutating_method_flagged(self):
        found = _lint(
            """
            def check(spec, trace):
                trace.items.append((0, 1.0))
                return []
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]
        assert ".append()" in found[0].message

    def test_object_setattr_escape_hatch_flagged(self):
        found = _lint(
            """
            def check(spec, trace):
                object.__setattr__(trace, "tail", 0)
                return []
            """,
            self.PATH,
            "RK007",
        )
        assert _ids(found) == ["RK007"]

    def test_pure_law_ok(self):
        found = _lint(
            """
            def check(spec, trace):
                shifted = trace.shifted(7)
                local = list(trace.items)
                local.append((99, 1.0))
                return [shifted, local]
            """,
            self.PATH,
            "RK007",
        )
        assert found == []

    def test_scoped_to_laws_files_only(self):
        impure = """
            import time

            def check(spec, trace):
                trace.tail = 0
                return time.time()
            """
        assert _lint(impure, "repro/conformance/shrink.py", "RK007") == []
        assert _lint(impure, "repro/core/laws.py", "RK007") == []
        assert _ids(
            _lint(impure, "repro/conformance/laws_extra.py", "RK007")
        ) == ["RK007", "RK007"]


# --------------------------------------------------------------------- RK008


class TestParallelismBoundary:
    def test_multiprocessing_import_flagged(self):
        found = _lint(
            "import multiprocessing\n",
            "repro/core/x.py",
            "RK008",
        )
        assert _ids(found) == ["RK008"]
        assert "repro.parallel" in found[0].message

    def test_concurrent_futures_from_import_flagged(self):
        found = _lint(
            "from concurrent.futures import ProcessPoolExecutor\n",
            "repro/histograms/x.py",
            "RK008",
        )
        assert _ids(found) == ["RK008"]

    def test_threading_and_thread_flagged(self):
        found = _lint(
            """
            import threading
            import _thread
            """,
            "repro/conformance/x.py",
            "RK008",
        )
        assert _ids(found) == ["RK008", "RK008"]

    def test_parallel_package_is_exempt(self):
        source = """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            """
        assert _lint(source, "repro/parallel/executor.py", "RK008") == []

    def test_asyncio_flagged_outside_the_boundaries(self):
        # Event-loop machinery is concurrency machinery: an engine that
        # awaits is no longer a pure function of the trace.
        found = _lint(
            "import asyncio\n",
            "repro/core/x.py",
            "RK008",
        )
        assert _ids(found) == ["RK008"]
        assert "repro.service" in found[0].message
        assert _ids(
            _lint(
                "from asyncio import Queue\n",
                "repro/conformance/x.py",
                "RK008",
            )
        ) == ["RK008"]

    def test_service_and_benchkit_packages_are_exempt(self):
        source = """
            import asyncio
            from asyncio import StreamReader
            """
        assert _lint(source, "repro/service/daemon.py", "RK008") == []
        assert _lint(source, "repro/service/api.py", "RK008") == []
        assert _lint(source, "repro/benchkit/service.py", "RK008") == []

    def test_sharded_worker_plane_is_exempt(self):
        # The multi-process sharded front is the second sanctioned
        # concurrency surface inside repro.service: worker processes and
        # their pipes live in sharded.py/ipc.py.
        source = """
            import multiprocessing
            from multiprocessing.connection import Connection
            """
        assert _lint(source, "repro/service/sharded.py", "RK008") == []
        assert _lint(source, "repro/service/ipc.py", "RK008") == []

    def test_prefix_lookalike_module_not_flagged(self):
        # `concurrency_notes` shares a prefix with `concurrent` but is not
        # the banned root module.
        found = _lint(
            "import concurrency_notes\n",
            "repro/core/x.py",
            "RK008",
        )
        assert found == []

    def test_shipped_executor_is_the_only_concurrency_site(self):
        # Pin the allowlist against the real tree: lint every shipped
        # source file and demand zero RK008 violations (the one legit
        # import site lives under the exempt parallel/ component).
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent).as_posix()
            assert lint_source(path.read_text(), rel, select=["RK008"]) == [], rel
