"""The mypy --strict gate, exercised when mypy is installed.

The container used for tier-1 test runs does not ship mypy; CI installs
the ``lint`` extra and runs this for real (see .github/workflows/ci.yml),
locally it skips rather than silently passing.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parents[2]

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (lint extra); gate runs in CI",
)


def test_mypy_strict_passes_on_src() -> None:
    env = dict(os.environ)
    env["MYPYPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", "src/repro"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
