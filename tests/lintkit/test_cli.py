"""End-to-end CLI tests: ``python -m repro.lintkit`` over the fixtures."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def run_lintkit(*args: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lintkit", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCliOnFixtures:
    def test_bad_fixtures_fail_with_rule_id_and_location(self):
        proc = run_lintkit(str(FIXTURES))
        assert proc.returncode == 1
        # every seeded rule fires, each with a file:line:col anchor
        for rule_id in ("RK001", "RK002", "RK003", "RK004", "RK005", "RK006"):
            assert rule_id in proc.stdout, proc.stdout
        assert re.search(r"bad_rk001\.py:\d+:\d+: RK001", proc.stdout)

    def test_clean_fixture_exits_zero(self):
        proc = run_lintkit(str(FIXTURES / "clean"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout

    def test_select_limits_rules(self):
        proc = run_lintkit(str(FIXTURES), "--select", "RK004")
        assert proc.returncode == 1
        assert "RK004" in proc.stdout
        assert "RK001" not in proc.stdout

    def test_json_format_is_machine_readable(self):
        proc = run_lintkit(str(FIXTURES), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] >= 7
        rules = {v["rule"] for v in payload["violations"]}
        assert {"RK001", "RK002", "RK003", "RK004", "RK005", "RK006"} <= rules
        first = payload["violations"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}

    def test_list_rules(self):
        proc = run_lintkit("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RK001", "RK002", "RK003", "RK004", "RK005", "RK006"):
            assert rule_id in proc.stdout

    def test_unknown_rule_is_usage_error(self):
        proc = run_lintkit(str(FIXTURES), "--select", "RK999")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr
        assert "RK999" in proc.stderr

    def test_unknown_rule_mixed_with_known_names_the_bad_id(self):
        proc = run_lintkit(str(FIXTURES), "--select", "RK001,RK777")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr
        assert "RK777" in proc.stderr
        assert "RK001" not in proc.stderr  # only the bad id is named

    def test_empty_selection_is_usage_error(self):
        # `--select ,` used to silently lint with zero rules and exit 0.
        proc = run_lintkit(str(FIXTURES), "--select", ",")
        assert proc.returncode == 2
        assert "names no rules" in proc.stderr

    def test_missing_path_is_usage_error(self):
        proc = run_lintkit(str(FIXTURES / "does-not-exist"))
        assert proc.returncode == 2


class TestBaselines:
    def test_write_then_apply_round_trip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        proc = run_lintkit(str(FIXTURES), "--write-baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "baseline: wrote" in proc.stdout
        assert baseline.is_file()
        # With every current finding baselined, the same run passes...
        proc = run_lintkit(str(FIXTURES), "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "baselined finding(s) suppressed" in proc.stdout
        # ...and is reported in the JSON document too.
        proc = run_lintkit(
            str(FIXTURES), "--baseline", str(baseline), "--format", "json"
        )
        payload = json.loads(proc.stdout)
        assert payload["violations"] == []
        assert payload["baselined"] > 0

    def test_new_violation_survives_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        run_lintkit(str(FIXTURES), "--write-baseline", str(baseline))
        extra = tmp_path / "fresh.py"
        extra.write_text("import time\nx = time.time()\n", encoding="utf-8")
        proc = run_lintkit(
            str(FIXTURES), str(extra), "--baseline", str(baseline)
        )
        assert proc.returncode == 1
        assert "fresh.py" in proc.stdout
        assert "RK001" in proc.stdout

    def test_corrupt_baseline_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        proc = run_lintkit(str(FIXTURES), "--baseline", str(bad))
        assert proc.returncode == 2
        assert "baseline" in proc.stderr


class TestEvidenceReporting:
    SRC_A = (
        "from repro.benchkit.timers import stamp\n"
        "def ingest():\n"
        "    return stamp()\n"
    )
    SRC_B = "import time\ndef stamp():\n    return time.time()\n"

    def _project(self, tmp_path):
        root = tmp_path / "src" / "repro"
        (root / "core").mkdir(parents=True)
        (root / "benchkit").mkdir()
        (root / "core" / "trace.py").write_text(self.SRC_A, encoding="utf-8")
        (root / "benchkit" / "timers.py").write_text(
            self.SRC_B, encoding="utf-8"
        )
        return tmp_path / "src"

    def test_json_rows_carry_evidence_chains(self, tmp_path):
        proc = run_lintkit(
            str(self._project(tmp_path)), "--select", "RK010",
            "--format", "json",
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        [row] = payload["violations"]
        assert row["rule"] == "RK010"
        assert row["evidence"] == [
            "repro.core.trace.ingest",
            "repro.benchkit.timers.stamp",
            "time.time",
        ]

    def test_text_mode_renders_chain_inline(self, tmp_path):
        proc = run_lintkit(str(self._project(tmp_path)), "--select", "RK010")
        assert proc.returncode == 1
        assert (
            "[repro.core.trace.ingest -> repro.benchkit.timers.stamp"
            " -> time.time]" in proc.stdout
        )


class TestCliOnShippedTree:
    def test_src_repro_is_clean(self):
        proc = run_lintkit("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout
