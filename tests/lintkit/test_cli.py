"""End-to-end CLI tests: ``python -m repro.lintkit`` over the fixtures."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def run_lintkit(*args: str) -> subprocess.CompletedProcess[str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lintkit", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCliOnFixtures:
    def test_bad_fixtures_fail_with_rule_id_and_location(self):
        proc = run_lintkit(str(FIXTURES))
        assert proc.returncode == 1
        # every seeded rule fires, each with a file:line:col anchor
        for rule_id in ("RK001", "RK002", "RK003", "RK004", "RK005", "RK006"):
            assert rule_id in proc.stdout, proc.stdout
        assert re.search(r"bad_rk001\.py:\d+:\d+: RK001", proc.stdout)

    def test_clean_fixture_exits_zero(self):
        proc = run_lintkit(str(FIXTURES / "clean"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout

    def test_select_limits_rules(self):
        proc = run_lintkit(str(FIXTURES), "--select", "RK004")
        assert proc.returncode == 1
        assert "RK004" in proc.stdout
        assert "RK001" not in proc.stdout

    def test_json_format_is_machine_readable(self):
        proc = run_lintkit(str(FIXTURES), "--format", "json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["files_checked"] >= 7
        rules = {v["rule"] for v in payload["violations"]}
        assert {"RK001", "RK002", "RK003", "RK004", "RK005", "RK006"} <= rules
        first = payload["violations"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}

    def test_list_rules(self):
        proc = run_lintkit("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RK001", "RK002", "RK003", "RK004", "RK005", "RK006"):
            assert rule_id in proc.stdout

    def test_unknown_rule_is_usage_error(self):
        proc = run_lintkit(str(FIXTURES), "--select", "RK999")
        assert proc.returncode == 2
        assert "RK999" in proc.stderr

    def test_missing_path_is_usage_error(self):
        proc = run_lintkit(str(FIXTURES / "does-not-exist"))
        assert proc.returncode == 2


class TestCliOnShippedTree:
    def test_src_repro_is_clean(self):
        proc = run_lintkit("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout
