"""Unit tests for the time-decaying L_p norm sketch (paper section 7.1)."""

import random

import pytest

from repro.core.decay import (
    ExponentialDecay,
    PolynomialDecay,
    SlidingWindowDecay,
)
from repro.core.errors import EmptyAggregateError, InvalidParameterError
from repro.sketches.lp_norm import DecayedLpNorm, ExactDecayedVector


def run_pair(decay, p, dim=40, steps=400, rows=41, seed=3):
    exact = ExactDecayedVector(decay, dim)
    sketch = DecayedLpNorm(decay, p, dim, rows=rows, epsilon=0.05, seed=seed)
    rng = random.Random(seed)
    for _ in range(steps):
        c = rng.randrange(dim)
        a = rng.uniform(0.5, 2.0)
        exact.add(c, a)
        sketch.add(c, a)
        exact.advance(1)
        sketch.advance(1)
    return exact, sketch


class TestExactDecayedVector:
    def test_vector_weights(self):
        g = PolynomialDecay(1.0)
        v = ExactDecayedVector(g, 3)
        v.add(0, 2.0)
        v.advance(4)
        v.add(2, 1.0)
        vec = v.vector()
        assert vec[0] == pytest.approx(2.0 * g.weight(4))
        assert vec[1] == 0.0
        assert vec[2] == pytest.approx(1.0)

    def test_norms(self):
        v = ExactDecayedVector(PolynomialDecay(1.0), 2)
        v.add(0, 3.0)
        v.add(1, 4.0)
        assert v.norm(2.0) == pytest.approx(5.0)
        assert v.norm(1.0) == pytest.approx(7.0)

    def test_validation(self):
        v = ExactDecayedVector(PolynomialDecay(1.0), 2)
        with pytest.raises(InvalidParameterError):
            v.add(5, 1.0)
        with pytest.raises(InvalidParameterError):
            v.add(0, -1.0)
        with pytest.raises(InvalidParameterError):
            v.norm(0.0)


class TestSketchAccuracy:
    @pytest.mark.parametrize("p", [1.0, 1.5, 2.0])
    def test_norm_estimate_close(self, p):
        exact, sketch = run_pair(PolynomialDecay(1.0), p)
        true = exact.norm(p)
        est = sketch.query()
        assert est.relative_error_vs(true) < 0.35  # median of 41 rows
        assert est.lower <= est.value <= est.upper

    def test_works_with_sliding_window_decay(self):
        exact, sketch = run_pair(SlidingWindowDecay(100), 1.0, steps=300)
        true = exact.norm(1.0)
        assert sketch.query().relative_error_vs(true) < 0.35

    def test_works_with_exponential_decay(self):
        exact, sketch = run_pair(ExponentialDecay(0.02), 1.0, steps=300)
        true = exact.norm(1.0)
        assert sketch.query().relative_error_vs(true) < 0.35

    def test_more_rows_concentrate(self):
        errors = {}
        for rows in (7, 81):
            errs = []
            for seed in range(5):
                exact, sketch = run_pair(
                    PolynomialDecay(1.0), 1.0, rows=rows, seed=seed, steps=200
                )
                errs.append(sketch.query().relative_error_vs(exact.norm(1.0)))
            errors[rows] = sum(errs) / len(errs)
        assert errors[81] < errors[7] + 0.05


class TestSketchMechanics:
    def test_row_values_signed(self):
        _, sketch = run_pair(PolynomialDecay(1.0), 1.0, steps=100)
        vals = sketch.row_values()
        assert any(v < 0 for v in vals) and any(v > 0 for v in vals)

    def test_empty_sketch_norm_zero(self):
        sketch = DecayedLpNorm(PolynomialDecay(1.0), 1.0, 5, rows=9)
        assert sketch.query().value == 0.0

    def test_validation(self):
        sketch = DecayedLpNorm(PolynomialDecay(1.0), 1.0, 5, rows=9)
        with pytest.raises(InvalidParameterError):
            sketch.add(5, 1.0)
        with pytest.raises(InvalidParameterError):
            sketch.add(0, -1.0)
        with pytest.raises(InvalidParameterError):
            sketch.advance(-1)
        with pytest.raises(InvalidParameterError):
            DecayedLpNorm(PolynomialDecay(1.0), 1.0, 5, rows=0)

    def test_storage_sublinear_in_dim(self):
        # o(d) space: the sketch footprint must not scale with dim.
        small = DecayedLpNorm(PolynomialDecay(1.0), 1.0, 10, rows=9, seed=1)
        large = DecayedLpNorm(PolynomialDecay(1.0), 1.0, 10_000, rows=9, seed=1)
        rng = random.Random(0)
        for sk in (small, large):
            for _ in range(100):
                sk.add(rng.randrange(10), 1.0)
                sk.advance(1)
        assert (
            large.storage_report().per_stream_bits
            <= 1.2 * small.storage_report().per_stream_bits + 64
        )
