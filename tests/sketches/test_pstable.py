"""Unit tests for p-stable variate generation."""

import math
import random
import statistics

import pytest

from repro.core.errors import InvalidParameterError
from repro.sketches.pstable import StableMatrix, cms_sample, mix_seed, stable_abs_median


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(1, 2, 3) == mix_seed(1, 2, 3)

    def test_sensitive_to_order_and_values(self):
        assert mix_seed(1, 2) != mix_seed(2, 1)
        assert mix_seed(1, 2) != mix_seed(1, 3)

    def test_64bit_range(self):
        assert 0 <= mix_seed(123, 456) < (1 << 64)


class TestCmsSample:
    def test_cauchy_median_of_abs(self):
        rng = random.Random(1)
        draws = sorted(abs(cms_sample(1.0, rng)) for _ in range(40_000))
        med = draws[20_000]
        assert med == pytest.approx(1.0, rel=0.05)  # |Cauchy| median = 1

    def test_gaussian_case_variance(self):
        rng = random.Random(2)
        draws = [cms_sample(2.0, rng) for _ in range(40_000)]
        assert statistics.pvariance(draws) == pytest.approx(2.0, rel=0.1)

    def test_symmetric(self):
        rng = random.Random(3)
        draws = [cms_sample(1.5, rng) for _ in range(30_000)]
        med = statistics.median(draws)
        assert abs(med) < 0.05

    def test_rejects_bad_p(self):
        rng = random.Random(4)
        with pytest.raises(InvalidParameterError):
            cms_sample(0.0, rng)
        with pytest.raises(InvalidParameterError):
            cms_sample(2.5, rng)


class TestStableAbsMedian:
    def test_closed_forms(self):
        assert stable_abs_median(1.0) == 1.0
        assert stable_abs_median(2.0) == pytest.approx(
            math.sqrt(2.0) * 0.6744897501960817
        )

    def test_calibrated_value_plausible(self):
        # |stable| medians are close to 1 across p in [1, 2] (1.0 at p=1,
        # 0.954 at p=2); the Monte-Carlo calibration must land nearby.
        m15 = stable_abs_median(1.5)
        assert 0.9 < m15 < 1.05

    def test_cached(self):
        assert stable_abs_median(1.3) == stable_abs_median(1.3)


class TestStableMatrix:
    def test_entries_reproducible_without_storage(self):
        a = StableMatrix(1.0, rows=4, dim=10, seed=9)
        b = StableMatrix(1.0, rows=4, dim=10, seed=9)
        for j in range(4):
            for c in range(10):
                assert a.entry(j, c) == b.entry(j, c)

    def test_different_seeds_differ(self):
        a = StableMatrix(1.0, rows=2, dim=4, seed=1)
        b = StableMatrix(1.0, rows=2, dim=4, seed=2)
        assert any(
            a.entry(j, c) != b.entry(j, c) for j in range(2) for c in range(4)
        )

    def test_column(self):
        m = StableMatrix(2.0, rows=3, dim=5, seed=0)
        col = m.column(2)
        assert col == [m.entry(j, 2) for j in range(3)]

    def test_bounds_checked(self):
        m = StableMatrix(1.0, rows=2, dim=3, seed=0)
        with pytest.raises(InvalidParameterError):
            m.entry(2, 0)
        with pytest.raises(InvalidParameterError):
            m.entry(0, 3)
        with pytest.raises(InvalidParameterError):
            StableMatrix(1.0, rows=0, dim=1)
