# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test lint lint-baseline typecheck check conformance conformance-service conformance-service-sharded bench bench-throughput bench-compare bench-service bench-service-scaling bench-service-compare examples clean all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# AST invariant linter (full RK001-RK012 rule set, including the
# whole-program call-graph/taint rules; docs/STATIC_ANALYSIS.md);
# stdlib-only. src/repro must be clean outright; benchmarks/ and
# examples/ lint against the checked-in baseline of accepted findings.
# Works from a checkout without `make install` via PYTHONPATH.
lint:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.lintkit \
		src/repro benchmarks examples --baseline lint-baseline.json

# Re-record the accepted-finding baseline after a reviewed change.
lint-baseline:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.lintkit \
		src/repro benchmarks examples --write-baseline lint-baseline.json

# Oracle-differential + metamorphic fuzzing over every factory engine
# (docs/CONFORMANCE.md). Exit 1 on any law violation; writes the JSON
# report and proves the kit catches injected bugs (--self-test).
conformance:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.conformance \
		--seeds 50 --engines all --self-test --out CONFORMANCE.json

# The same law catalog run *through* the keyed ServiceStore (the
# daemon/API state machine): any divergence from the direct engine is a
# law violation (docs/SERVICE.md).
conformance-service:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.conformance \
		--mode service --seeds 25 --engines all

# The store-contract laws once more, but served from a 3-worker
# ShardedServiceStore: every cell crosses the multi-process IPC plane
# (docs/SERVICE.md, "Sharded deployment").
conformance-service-sharded:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.conformance \
		--mode service --service-workers 3 --seeds 10 --engines all

# Requires the `lint` extra (pip install -e .[lint]).
typecheck:
	MYPYPATH=src $(PYTHON) -m mypy --strict src/repro

check: test lint conformance

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Ingestion-throughput baseline: writes BENCH_throughput.json (repo root).
bench-throughput:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.benchkit.throughput \
		--items 20000 --bulk-value 100000 --out BENCH_throughput.json

# Regression gate: fresh measurement vs the checked-in baseline. Fails
# (exit 1) when any (engine, trace, mode) cell drops more than 30%.
bench-compare: bench-throughput
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.benchkit.regress \
		--baseline benchmarks/baselines/BENCH_throughput.json \
		--fresh BENCH_throughput.json

# Service-layer baseline: live daemon + HTTP query path; writes
# BENCH_service.json (repo root).
bench-service:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.benchkit.service \
		--items 20000 --keys 64 --queries 400 --out BENCH_service.json

# The same measurement plus the scaling section: sharded 2- and
# 4-worker fronts against the single-process reference. The regress
# gate enforces the 4-worker speedup only on >= 4-cpu machines.
bench-service-scaling:
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.benchkit.service \
		--items 20000 --keys 64 --queries 400 \
		--scaling --scaling-workers 2,4 --out BENCH_service.json

# Service regress gate: fresh measurement vs the checked-in baseline.
# Fails (exit 1) on >30% ingest-throughput drop or p99 query inflation.
bench-service-compare: bench-service
	PYTHONPATH=src:$(PYTHONPATH) $(PYTHON) -m repro.benchkit.service \
		--baseline benchmarks/baselines/BENCH_service.json \
		--fresh BENCH_service.json

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
		benchmarks/results .benchmarks CONFORMANCE.json coverage.xml \
		BENCH_service.json
	find . -name __pycache__ -type d -exec rm -rf {} +

all: install test bench
