# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench examples clean all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do \
		echo "=== $$ex ==="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
		benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

all: install test bench
